//! Self-tests of the model-check scheduler: these validate that the
//! exploration engine *itself* finds the classic bug shapes (lost
//! updates, deadlocks, lost wakeups), proves benign code clean, and —
//! crucially — that a failing schedule replays identically from its
//! seed. Run with:
//!
//! ```text
//! cargo test -p qcm-sync --features model-check
//! ```
#![cfg(feature = "model-check")]

use qcm_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use qcm_sync::model::{self, ModelConfig};
use qcm_sync::{thread, Arc, Condvar, Mutex};

/// A correct mutex-protected counter survives exploration.
#[test]
fn mutex_counter_is_clean() {
    let report = model::explore("mutex_counter", 300, ModelConfig::default(), || {
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let counter = counter.clone();
                thread::spawn(move || *counter.lock() += 1)
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 3);
    });
    assert_eq!(report.schedules, 300);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

/// The classic lost update: two threads doing load-then-store
/// increments on an atomic. The scheduler must find a schedule where
/// one increment vanishes.
#[test]
fn finds_lost_update() {
    let failure = model::find_failure(500, ModelConfig::default(), || {
        let cell = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cell = cell.clone();
                thread::spawn(move || {
                    let v = cell.load(Ordering::SeqCst);
                    cell.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.load(Ordering::SeqCst), 2, "lost update");
    });
    let failure = failure.expect("exploration should find the lost update");
    assert!(
        failure.failure.as_deref().unwrap().contains("lost update"),
        "unexpected failure: {:?}",
        failure.failure
    );
}

/// A failing schedule is fully described by its seed: re-running the
/// seed reproduces the identical decision trace and the same failure.
#[test]
fn failing_schedule_replays_identically() {
    let body = || {
        let cell = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cell = cell.clone();
                thread::spawn(move || {
                    let v = cell.load(Ordering::SeqCst);
                    cell.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.load(Ordering::SeqCst), 2, "lost update");
    };
    let first = model::find_failure(500, ModelConfig::default(), body)
        .expect("exploration should find the lost update");

    // Replay twice from the recorded seed: identical trace, same failure.
    for _ in 0..2 {
        let replay = model::check_seed(first.seed, ModelConfig::default(), body);
        assert_eq!(replay.trace, first.trace, "trace diverged on replay");
        assert_eq!(replay.failure, first.failure);
        assert_eq!(replay.steps, first.steps);
    }
}

/// AB-BA lock ordering: the scheduler must find the deadlock, and the
/// report must name it as one.
#[test]
fn finds_abba_deadlock() {
    let failure = model::find_failure(500, ModelConfig::default(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let t = {
            let a = a.clone();
            let b = b.clone();
            thread::spawn(move || {
                let _a = a.lock();
                let _b = b.lock();
            })
        };
        {
            let _b = b.lock();
            let _a = a.lock();
        }
        let _ = t.join();
    });
    let failure = failure.expect("exploration should find the AB-BA deadlock");
    assert!(
        failure.failure.as_deref().unwrap().contains("deadlock"),
        "unexpected failure: {:?}",
        failure.failure
    );
}

/// A notify that fires before the waiter parks is forgotten (condvars
/// do not latch). Without a predicate re-check this is a lost wakeup,
/// which surfaces as a deadlock.
#[test]
fn finds_lost_wakeup() {
    let failure = model::find_failure(500, ModelConfig::default(), || {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let waiter = {
            let pair = pair.clone();
            thread::spawn(move || {
                let (lock, cv) = &*pair;
                // BUG under test: unconditional wait with no predicate —
                // if the notify fires before this thread parks, the
                // wakeup is lost and the wait never returns.
                let guard = lock.lock();
                let _guard = cv.wait(guard);
            })
        };
        pair.1.notify_one();
        let _ = waiter.join();
    });
    let failure = failure.expect("exploration should find the lost wakeup");
    assert!(
        failure.failure.as_deref().unwrap().contains("deadlock"),
        "unexpected failure: {:?}",
        failure.failure
    );
}

/// The correct predicate-loop version of the same producer/consumer
/// handshake passes exploration.
#[test]
fn condvar_predicate_loop_is_clean() {
    let report = model::explore("condvar_handshake", 300, ModelConfig::default(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = pair.clone();
            thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock();
                while !*ready {
                    ready = cv.wait(ready);
                }
            })
        };
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        waiter.join().unwrap();
    });
    assert_eq!(report.schedules, 300);
}

/// Publishing data with a Relaxed flag store / Relaxed flag load has no
/// happens-before edge: the vector-clock layer must diagnose it, and
/// [`ModelConfig::strict`] must turn the diagnostic into a failure.
#[test]
fn diagnoses_unsynchronised_publication() {
    let body = || {
        let flag = Arc::new(AtomicBool::new(false));
        let t = {
            let flag = flag.clone();
            thread::spawn(move || flag.store(true, Ordering::Relaxed))
        };
        // ordering: Relaxed on purpose — this test *wants* the missing edge.
        let _ = flag.load(Ordering::Relaxed);
        let _ = t.join();
    };

    let report = model::explore("unsync_advisory", 200, ModelConfig::default(), body);
    assert!(
        !report.diagnostics.is_empty(),
        "expected an unsynchronised-communication diagnostic"
    );
    assert!(report.diagnostics[0].contains("unsynchronised atomic communication"));

    let strict = model::find_failure(200, ModelConfig::strict(), body);
    assert!(
        strict.is_some(),
        "strict mode should fail on the unsynchronised load"
    );
}

/// The same publication through Release/Acquire carries the clock: no
/// diagnostics even in strict mode.
#[test]
fn release_acquire_publication_is_clean() {
    let report = model::explore("release_acquire", 300, ModelConfig::strict(), || {
        let flag = Arc::new(AtomicBool::new(false));
        let value = Arc::new(AtomicU64::new(0));
        let t = {
            let flag = flag.clone();
            let value = value.clone();
            thread::spawn(move || {
                value.store(41, Ordering::Relaxed);
                // ordering: Release publishes the value store above.
                flag.store(true, Ordering::Release);
            })
        };
        // ordering: Acquire pairs with the Release store of the flag.
        if flag.load(Ordering::Acquire) {
            let v = value.load(Ordering::Relaxed);
            assert_eq!(v, 41);
        }
        t.join().unwrap();
    });
    assert_eq!(report.schedules, 300);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

/// Recursive locking of a non-reentrant mutex is reported, not hung.
#[test]
fn finds_self_deadlock() {
    let failure = model::find_failure(5, ModelConfig::default(), || {
        let m = Mutex::new(());
        let _a = m.lock();
        let _b = m.lock();
    });
    let failure = failure.expect("self-deadlock should be reported");
    assert!(
        failure.failure.as_deref().unwrap().contains("re-locking"),
        "unexpected failure: {:?}",
        failure.failure
    );
}

/// RMW operations (fetch_add) never lose updates and need no
/// diagnostics: they always read the latest value in modification
/// order.
#[test]
fn fetch_add_is_clean() {
    let report = model::explore("fetch_add", 300, ModelConfig::strict(), || {
        let cell = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let cell = cell.clone();
                // ordering: Relaxed — pure counter, the final value is read
                // after join edges establish happens-before.
                thread::spawn(move || cell.fetch_add(1, Ordering::Relaxed))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.load(Ordering::Relaxed), 3);
    });
    assert_eq!(report.schedules, 300);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

/// Exploration is genuinely diverse: across many seeds of a 3-thread
/// interleaving both extreme outcomes of a racy max-tracking pattern
/// appear.
#[test]
fn schedules_are_diverse() {
    use std::sync::atomic::AtomicU64 as PlainU64;
    use std::sync::atomic::Ordering as PlainOrdering;
    // Collected across schedules; plain std atomic on purpose (it is
    // test bookkeeping, not part of the modelled program).
    let orders_seen = PlainU64::new(0);
    model::explore("diversity", 200, ModelConfig::default(), || {
        let cell = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (1..=2u64)
            .map(|i| {
                let cell = cell.clone();
                thread::spawn(move || cell.store(i, Ordering::SeqCst))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let last = cell.load(Ordering::SeqCst);
        orders_seen.fetch_or(1 << last, PlainOrdering::Relaxed);
    });
    assert_eq!(
        orders_seen.load(PlainOrdering::Relaxed),
        0b110,
        "both final values (1 and 2) should occur across 200 seeds"
    );
}

/// Threads spawned through `thread::Builder` (named) participate in the
/// schedule exactly like `thread::spawn` ones.
#[test]
fn builder_threads_participate() {
    let report = model::explore("builder", 100, ModelConfig::default(), || {
        let counter = Arc::new(Mutex::new(0u64));
        let h = {
            let counter = counter.clone();
            thread::Builder::new()
                .name("qcm-mc-worker".to_string())
                .spawn(move || *counter.lock() += 1)
                .expect("spawn")
        };
        h.join().unwrap();
        assert_eq!(*counter.lock(), 1);
    });
    assert_eq!(report.schedules, 100);
}
