//! Facade implementations compiled under the `model-check` feature:
//! the same API as [`crate::pass`], but every operation first consults
//! the calling thread's scheduler context ([`crate::model::ctx`]). On a
//! thread that participates in a schedule the operation becomes a
//! schedule point; on any other thread (a regular test, the production
//! binary built with the feature by accident) it degrades to the plain
//! std behaviour.
//!
//! Real `std` primitives still sit underneath everything, so the model
//! layer is a *discipline* on top of genuinely sound synchronisation:
//! even a scheduler bug cannot produce undefined behaviour, only a
//! wrong exploration.

use crate::model::{self, Ctx};
use std::panic::Location;
use std::sync::atomic::AtomicUsize as RawUsize;
use std::sync::atomic::Ordering as RawOrdering;
use std::sync::TryLockError;

/// Lazily assigns and returns the process-global object id stored in
/// `slot` (0 = unassigned).
fn object_id(slot: &RawUsize) -> usize {
    let id = slot.load(RawOrdering::Relaxed);
    if id != 0 {
        return id;
    }
    let fresh = model::fresh_object_id();
    match slot.compare_exchange(0, fresh, RawOrdering::Relaxed, RawOrdering::Relaxed) {
        Ok(_) => fresh,
        Err(existing) => existing,
    }
}

/// A mutual-exclusion primitive with a non-poisoning API (checked).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    id: RawUsize,
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    /// `Some` until `Drop` takes it; the std guard is released *before*
    /// the model unlock so the next model-granted holder can take it
    /// without contention.
    std_guard: Option<std::sync::MutexGuard<'a, T>>,
    mutex: &'a Mutex<T>,
    /// The scheduler participation of the locking thread, when any.
    ctl: Option<Ctx>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            id: RawUsize::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    fn raw_lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match model::ctx() {
            None => MutexGuard {
                std_guard: Some(self.raw_lock()),
                mutex: self,
                ctl: None,
            },
            Some(ctx) => {
                ctx.sched.mutex_lock(ctx.tid, object_id(&self.id));
                MutexGuard {
                    // Model ownership granted: the std lock is free (the
                    // previous holder released it before its model unlock).
                    std_guard: Some(self.raw_lock()),
                    mutex: self,
                    ctl: Some(ctx),
                }
            }
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match model::ctx() {
            None => match self.inner.try_lock() {
                Ok(guard) => Some(MutexGuard {
                    std_guard: Some(guard),
                    mutex: self,
                    ctl: None,
                }),
                Err(TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                    std_guard: Some(poisoned.into_inner()),
                    mutex: self,
                    ctl: None,
                }),
                Err(TryLockError::WouldBlock) => None,
            },
            Some(ctx) => {
                if ctx.sched.mutex_try_lock(ctx.tid, object_id(&self.id)) {
                    Some(MutexGuard {
                        std_guard: Some(self.raw_lock()),
                        mutex: self,
                        ctl: Some(ctx),
                    })
                } else {
                    None
                }
            }
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Order matters: free the std lock first, then release model
        // ownership (which may immediately schedule the next holder).
        self.std_guard = None;
        if let Some(ctx) = self.ctl.take() {
            ctx.sched.mutex_unlock(ctx.tid, object_id(&self.mutex.id));
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std_guard.as_ref().expect("guard taken only in Drop")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std_guard.as_mut().expect("guard taken only in Drop")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader–writer lock (checked build).
///
/// The model treats it as a mutex — writer semantics for every guard —
/// which over-serialises readers but preserves soundness and still
/// explores all lock-ordering interleavings. No code in this workspace
/// currently relies on read-parallelism for correctness.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    id: RawUsize,
    inner: std::sync::RwLock<T>,
}

/// RAII read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    std_guard: Option<std::sync::RwLockReadGuard<'a, T>>,
    lock: &'a RwLock<T>,
    ctl: Option<Ctx>,
}

/// RAII write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    std_guard: Option<std::sync::RwLockWriteGuard<'a, T>>,
    lock: &'a RwLock<T>,
    ctl: Option<Ctx>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            id: RawUsize::new(0),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access (modelled as exclusive).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let ctl = model::ctx();
        if let Some(ctx) = &ctl {
            ctx.sched.mutex_lock(ctx.tid, object_id(&self.id));
        }
        let std_guard = match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockReadGuard {
            std_guard: Some(std_guard),
            lock: self,
            ctl,
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let ctl = model::ctx();
        if let Some(ctx) = &ctl {
            ctx.sched.mutex_lock(ctx.tid, object_id(&self.id));
        }
        let std_guard = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockWriteGuard {
            std_guard: Some(std_guard),
            lock: self,
            ctl,
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match model::ctx() {
            None => match self.inner.try_read() {
                Ok(g) => Some(RwLockReadGuard {
                    std_guard: Some(g),
                    lock: self,
                    ctl: None,
                }),
                Err(TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                    std_guard: Some(p.into_inner()),
                    lock: self,
                    ctl: None,
                }),
                Err(TryLockError::WouldBlock) => None,
            },
            Some(ctx) => {
                if ctx.sched.mutex_try_lock(ctx.tid, object_id(&self.id)) {
                    let g = match self.inner.try_read() {
                        Ok(g) => g,
                        Err(TryLockError::Poisoned(p)) => p.into_inner(),
                        Err(TryLockError::WouldBlock) => {
                            unreachable!("model grant implies the std lock is free")
                        }
                    };
                    Some(RwLockReadGuard {
                        std_guard: Some(g),
                        lock: self,
                        ctl: Some(ctx),
                    })
                } else {
                    None
                }
            }
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match model::ctx() {
            None => match self.inner.try_write() {
                Ok(g) => Some(RwLockWriteGuard {
                    std_guard: Some(g),
                    lock: self,
                    ctl: None,
                }),
                Err(TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                    std_guard: Some(p.into_inner()),
                    lock: self,
                    ctl: None,
                }),
                Err(TryLockError::WouldBlock) => None,
            },
            Some(ctx) => {
                if ctx.sched.mutex_try_lock(ctx.tid, object_id(&self.id)) {
                    let g = match self.inner.try_write() {
                        Ok(g) => g,
                        Err(TryLockError::Poisoned(p)) => p.into_inner(),
                        Err(TryLockError::WouldBlock) => {
                            unreachable!("model grant implies the std lock is free")
                        }
                    };
                    Some(RwLockWriteGuard {
                        std_guard: Some(g),
                        lock: self,
                        ctl: Some(ctx),
                    })
                } else {
                    None
                }
            }
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

macro_rules! rw_guard_common {
    ($guard:ident, $std:ident) => {
        impl<T: ?Sized> Drop for $guard<'_, T> {
            fn drop(&mut self) {
                self.std_guard = None;
                if let Some(ctx) = self.ctl.take() {
                    ctx.sched.mutex_unlock(ctx.tid, object_id(&self.lock.id));
                }
            }
        }

        impl<T: ?Sized> std::ops::Deref for $guard<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                self.std_guard.as_ref().expect("guard taken only in Drop")
            }
        }
    };
}

rw_guard_common!(RwLockReadGuard, RwLockReadGuardStd);
rw_guard_common!(RwLockWriteGuard, RwLockWriteGuardStd);

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std_guard.as_mut().expect("guard taken only in Drop")
    }
}

/// A condition variable paired with [`Mutex`] guards (checked).
#[derive(Debug, Default)]
pub struct Condvar {
    id: RawUsize,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            id: RawUsize::new(0),
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard and blocks until notified, then
    /// reacquires the lock.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        match guard.ctl.clone() {
            None => {
                let std_guard = guard.std_guard.take().expect("live guard");
                let mutex = guard.mutex;
                std::mem::forget(guard); // std path: nothing model-side to undo
                let inner = match self.inner.wait(std_guard) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                MutexGuard {
                    std_guard: Some(inner),
                    mutex,
                    ctl: None,
                }
            }
            Some(ctx) => {
                let mutex = guard.mutex;
                let mid = object_id(&mutex.id);
                // Release the std lock, then hand the whole
                // park/reacquire dance to the scheduler.
                guard.std_guard = None;
                guard.ctl = None;
                std::mem::forget(guard);
                ctx.sched.condvar_wait(ctx.tid, object_id(&self.id), mid);
                MutexGuard {
                    std_guard: Some(mutex.raw_lock()),
                    mutex,
                    ctl: Some(ctx),
                }
            }
        }
    }

    /// [`Condvar::wait`] with a timeout; the boolean is `true` when the
    /// wait timed out. Under an active schedule the timeout is modelled
    /// as a plain wait (virtual schedules have no wall clock): a
    /// scenario that depends on timeouts firing must model the timeout
    /// as an explicit notify.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match guard.ctl.clone() {
            None => {
                let mut guard = guard;
                let std_guard = guard.std_guard.take().expect("live guard");
                let mutex = guard.mutex;
                std::mem::forget(guard);
                let (inner, result) = match self.inner.wait_timeout(std_guard, timeout) {
                    Ok(pair) => pair,
                    Err(poisoned) => poisoned.into_inner(),
                };
                (
                    MutexGuard {
                        std_guard: Some(inner),
                        mutex,
                        ctl: None,
                    },
                    result.timed_out(),
                )
            }
            Some(_) => (self.wait(guard), false),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        if let Some(ctx) = model::ctx() {
            ctx.sched
                .condvar_notify(ctx.tid, object_id(&self.id), false);
        }
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        if let Some(ctx) = model::ctx() {
            ctx.sched.condvar_notify(ctx.tid, object_id(&self.id), true);
        }
        self.inner.notify_all();
    }
}

pub use std::sync::atomic::Ordering;

macro_rules! checked_atomic {
    ($(#[$meta:meta])* $name:ident, $std:ty, $prim:ty) => {
        $(#[$meta])*
        #[derive(Debug, Default)]
        pub struct $name {
            loc: RawUsize,
            inner: $std,
        }

        impl $name {
            /// Creates a new atomic holding `value`.
            pub const fn new(value: $prim) -> Self {
                $name {
                    loc: RawUsize::new(0),
                    inner: <$std>::new(value),
                }
            }

            fn on_load(&self, order: Ordering, site: crate::model::Site) {
                if let Some(ctx) = model::ctx() {
                    ctx.sched.atomic_load(ctx.tid, object_id(&self.loc), order, site);
                }
            }

            fn on_store(&self, order: Ordering, site: crate::model::Site) {
                if let Some(ctx) = model::ctx() {
                    ctx.sched.atomic_store(ctx.tid, object_id(&self.loc), order, site);
                }
            }

            fn on_rmw(&self, order: Ordering, site: crate::model::Site) {
                if let Some(ctx) = model::ctx() {
                    ctx.sched.atomic_rmw(ctx.tid, object_id(&self.loc), order, site);
                }
            }

            /// Loads the value with the given ordering.
            #[track_caller]
            pub fn load(&self, order: Ordering) -> $prim {
                self.on_load(order, Location::caller());
                // The cell always holds the newest value: the model
                // explores interleavings, not store buffers.
                self.inner.load(Ordering::SeqCst)
            }

            /// Stores `value` with the given ordering.
            #[track_caller]
            pub fn store(&self, value: $prim, order: Ordering) {
                self.on_store(order, Location::caller());
                self.inner.store(value, Ordering::SeqCst)
            }

            /// Swaps in `value`, returning the previous value.
            #[track_caller]
            pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                self.on_rmw(order, Location::caller());
                self.inner.swap(value, Ordering::SeqCst)
            }

            /// Compare-and-exchange; on success returns `Ok(previous)`.
            #[track_caller]
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                _failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.on_rmw(success, Location::caller());
                self.inner
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            /// Weak compare-and-exchange (may fail spuriously).
            #[track_caller]
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Applies `f` until it succeeds or returns `None` — one
            /// schedule point for the whole RMW.
            #[track_caller]
            pub fn fetch_update<F>(
                &self,
                set_order: Ordering,
                _fetch_order: Ordering,
                f: F,
            ) -> Result<$prim, $prim>
            where
                F: FnMut($prim) -> Option<$prim>,
            {
                self.on_rmw(set_order, Location::caller());
                self.inner
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, f)
            }

            /// Returns a mutable reference to the value.
            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }

            /// Consumes the atomic and returns the value.
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }
    };
}

macro_rules! checked_atomic_int {
    ($name:ident, $prim:ty) => {
        impl $name {
            /// Adds, returning the previous value.
            #[track_caller]
            pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                self.on_rmw(order, Location::caller());
                self.inner.fetch_add(value, Ordering::SeqCst)
            }

            /// Subtracts, returning the previous value.
            #[track_caller]
            pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                self.on_rmw(order, Location::caller());
                self.inner.fetch_sub(value, Ordering::SeqCst)
            }

            /// Bitwise-ors, returning the previous value.
            #[track_caller]
            pub fn fetch_or(&self, value: $prim, order: Ordering) -> $prim {
                self.on_rmw(order, Location::caller());
                self.inner.fetch_or(value, Ordering::SeqCst)
            }

            /// Bitwise-ands, returning the previous value.
            #[track_caller]
            pub fn fetch_and(&self, value: $prim, order: Ordering) -> $prim {
                self.on_rmw(order, Location::caller());
                self.inner.fetch_and(value, Ordering::SeqCst)
            }

            /// Stores the maximum, returning the previous value.
            #[track_caller]
            pub fn fetch_max(&self, value: $prim, order: Ordering) -> $prim {
                self.on_rmw(order, Location::caller());
                self.inner.fetch_max(value, Ordering::SeqCst)
            }

            /// Stores the minimum, returning the previous value.
            #[track_caller]
            pub fn fetch_min(&self, value: $prim, order: Ordering) -> $prim {
                self.on_rmw(order, Location::caller());
                self.inner.fetch_min(value, Ordering::SeqCst)
            }
        }
    };
}

checked_atomic!(
    /// Facade over [`std::sync::atomic::AtomicBool`] (checked).
    AtomicBool,
    std::sync::atomic::AtomicBool,
    bool
);
checked_atomic!(
    /// Facade over [`std::sync::atomic::AtomicU32`] (checked).
    AtomicU32,
    std::sync::atomic::AtomicU32,
    u32
);
checked_atomic!(
    /// Facade over [`std::sync::atomic::AtomicU64`] (checked).
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
checked_atomic!(
    /// Facade over [`std::sync::atomic::AtomicUsize`] (checked).
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);

checked_atomic_int!(AtomicU32, u32);
checked_atomic_int!(AtomicU64, u64);
checked_atomic_int!(AtomicUsize, usize);

impl AtomicBool {
    /// Bitwise-ors, returning the previous value.
    #[track_caller]
    pub fn fetch_or(&self, value: bool, order: Ordering) -> bool {
        self.on_rmw(order, Location::caller());
        self.inner.fetch_or(value, Ordering::SeqCst)
    }

    /// Bitwise-ands, returning the previous value.
    #[track_caller]
    pub fn fetch_and(&self, value: bool, order: Ordering) -> bool {
        self.on_rmw(order, Location::caller());
        self.inner.fetch_and(value, Ordering::SeqCst)
    }
}

/// Thread management routed through the facade (checked).
pub mod thread {
    use crate::model::{self, Ctx, ModelAbort};

    /// Handle to a spawned facade thread.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
        model: Option<(std::sync::Arc<crate::model::Scheduler>, usize)>,
    }

    impl<T> std::fmt::Debug for JoinHandle<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("JoinHandle").finish_non_exhaustive()
        }
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its result.
        pub fn join(self) -> std::thread::Result<T> {
            if let Some((sched, target)) = &self.model {
                if let Some(ctx) = model::ctx() {
                    sched.thread_join(ctx.tid, *target);
                }
            }
            self.inner.join()
        }

        /// True once the thread has finished executing.
        pub fn is_finished(&self) -> bool {
            self.inner.is_finished()
        }
    }

    fn spawn_inner<F, T>(std_builder: std::thread::Builder, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match model::ctx() {
            None => Ok(JoinHandle {
                inner: std_builder.spawn(f)?,
                model: None,
            }),
            Some(ctx) => {
                let tid = ctx.sched.register_thread(ctx.tid);
                let sched = ctx.sched.clone();
                let spawned = std_builder.spawn(move || {
                    model::enter_thread(Ctx {
                        sched: sched.clone(),
                        tid,
                    });
                    // first_schedule parks until the scheduler grants the
                    // token; it sits inside catch_unwind because it aborts
                    // (ModelAbort) when the schedule has already failed.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        sched.first_schedule(tid);
                        f()
                    }));
                    model::leave_thread();
                    match result {
                        Ok(value) => {
                            sched.thread_finish(tid);
                            value
                        }
                        Err(payload) => {
                            if payload.downcast_ref::<ModelAbort>().is_some() {
                                sched.thread_exit_after_abort(tid);
                            } else {
                                sched.thread_panicked(
                                    tid,
                                    crate::panic_message(payload.as_ref()).to_string(),
                                );
                            }
                            std::panic::resume_unwind(payload);
                        }
                    }
                });
                let inner = match spawned {
                    Ok(handle) => handle,
                    Err(err) => {
                        // The registered slot would otherwise keep the
                        // schedule's live count from draining.
                        ctx.sched.unregister_thread(tid);
                        return Err(err);
                    }
                };
                // Spawn is itself a schedule point: the child may run
                // immediately or the parent may race ahead.
                ctx.sched.yield_point(ctx.tid);
                Ok(JoinHandle {
                    inner,
                    model: Some((ctx.sched, tid)),
                })
            }
        }
    }

    /// Spawns a new thread running `f`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        spawn_inner(std::thread::Builder::new(), f).expect("failed to spawn thread")
    }

    /// Thread factory with configuration (name, stack size).
    #[derive(Debug)]
    pub struct Builder {
        inner: std::thread::Builder,
    }

    impl Default for Builder {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Builder {
        /// Creates a builder with default configuration.
        pub fn new() -> Self {
            Builder {
                inner: std::thread::Builder::new(),
            }
        }

        /// Names the thread.
        pub fn name(self, name: String) -> Self {
            Builder {
                inner: self.inner.name(name),
            }
        }

        /// Spawns the thread; errors if the OS refuses.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            spawn_inner(self.inner, f)
        }
    }

    /// Sleeps outside a schedule; inside one it is a pure yield point
    /// (virtual schedules have no wall clock to advance).
    pub fn sleep(dur: std::time::Duration) {
        match model::ctx() {
            None => std::thread::sleep(dur),
            Some(ctx) => ctx.sched.yield_point(ctx.tid),
        }
    }

    /// Cooperatively yields: a schedule point under the model.
    pub fn yield_now() {
        match model::ctx() {
            None => std::thread::yield_now(),
            Some(ctx) => ctx.sched.yield_point(ctx.tid),
        }
    }

    /// An estimate of the parallelism the host offers.
    pub fn available_parallelism() -> std::io::Result<std::num::NonZeroUsize> {
        std::thread::available_parallelism()
    }
}
