//! Zero-cost passthrough implementations: every type is a transparent
//! wrapper over its `std::sync` counterpart with parking_lot's
//! non-poisoning API. This module is compiled when the `model-check`
//! feature is **off** — the normal build of the whole workspace.
//!
//! The non-poisoning contract matters: a panic in one worker already
//! aborts the run at a higher level (the service fails the job, the
//! engine surfaces the panic), so every `lock()` here recovers the
//! inner guard instead of propagating a `PoisonError` that callers
//! would have to `unwrap_or_else` around at every site.

use std::sync::TryLockError;

/// A mutual-exclusion primitive with a non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    #[inline]
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Attempts to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(inner) => Some(MutexGuard { inner }),
            Err(TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: poisoned.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: the borrow proves exclusive access).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader–writer lock with a non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    #[inline]
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts shared read access without blocking.
    #[inline]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    #[inline]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A condition variable paired with [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[inline]
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard and blocks until notified, then
    /// reacquires the lock.
    #[inline]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let inner = match self.inner.wait(guard.inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner }
    }

    /// [`Condvar::wait`] with a timeout; the boolean is `true` when the
    /// wait timed out rather than being notified.
    #[inline]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (inner, result) = match self.inner.wait_timeout(guard.inner, timeout) {
            Ok(pair) => pair,
            Err(poisoned) => poisoned.into_inner(),
        };
        (MutexGuard { inner }, result.timed_out())
    }

    /// Wakes one waiting thread.
    #[inline]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    #[inline]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

macro_rules! passthrough_atomic {
    ($(#[$meta:meta])* $name:ident, $std:ty, $prim:ty) => {
        $(#[$meta])*
        #[derive(Debug, Default)]
        #[repr(transparent)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// Creates a new atomic holding `value`.
            #[inline]
            pub const fn new(value: $prim) -> Self {
                $name { inner: <$std>::new(value) }
            }

            /// Loads the value with the given ordering.
            #[inline]
            pub fn load(&self, order: Ordering) -> $prim {
                self.inner.load(order)
            }

            /// Stores `value` with the given ordering.
            #[inline]
            pub fn store(&self, value: $prim, order: Ordering) {
                self.inner.store(value, order)
            }

            /// Swaps in `value`, returning the previous value.
            #[inline]
            pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                self.inner.swap(value, order)
            }

            /// Compare-and-exchange; on success returns `Ok(previous)`.
            #[inline]
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.inner.compare_exchange(current, new, success, failure)
            }

            /// Weak compare-and-exchange (may fail spuriously).
            #[inline]
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.inner.compare_exchange_weak(current, new, success, failure)
            }

            /// Applies `f` until it succeeds or returns `None`.
            #[inline]
            pub fn fetch_update<F>(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                f: F,
            ) -> Result<$prim, $prim>
            where
                F: FnMut($prim) -> Option<$prim>,
            {
                self.inner.fetch_update(set_order, fetch_order, f)
            }

            /// Returns a mutable reference to the value.
            #[inline]
            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }

            /// Consumes the atomic and returns the value.
            #[inline]
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }
    };
}

macro_rules! passthrough_atomic_int {
    ($name:ident, $prim:ty) => {
        impl $name {
            /// Adds, returning the previous value.
            #[inline]
            pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                self.inner.fetch_add(value, order)
            }

            /// Subtracts, returning the previous value.
            #[inline]
            pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                self.inner.fetch_sub(value, order)
            }

            /// Bitwise-ors, returning the previous value.
            #[inline]
            pub fn fetch_or(&self, value: $prim, order: Ordering) -> $prim {
                self.inner.fetch_or(value, order)
            }

            /// Bitwise-ands, returning the previous value.
            #[inline]
            pub fn fetch_and(&self, value: $prim, order: Ordering) -> $prim {
                self.inner.fetch_and(value, order)
            }

            /// Stores the maximum, returning the previous value.
            #[inline]
            pub fn fetch_max(&self, value: $prim, order: Ordering) -> $prim {
                self.inner.fetch_max(value, order)
            }

            /// Stores the minimum, returning the previous value.
            #[inline]
            pub fn fetch_min(&self, value: $prim, order: Ordering) -> $prim {
                self.inner.fetch_min(value, order)
            }
        }
    };
}

pub use std::sync::atomic::Ordering;

passthrough_atomic!(
    /// Facade over [`std::sync::atomic::AtomicBool`].
    AtomicBool,
    std::sync::atomic::AtomicBool,
    bool
);
passthrough_atomic!(
    /// Facade over [`std::sync::atomic::AtomicU32`].
    AtomicU32,
    std::sync::atomic::AtomicU32,
    u32
);
passthrough_atomic!(
    /// Facade over [`std::sync::atomic::AtomicU64`].
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
passthrough_atomic!(
    /// Facade over [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);

passthrough_atomic_int!(AtomicU32, u32);
passthrough_atomic_int!(AtomicU64, u64);
passthrough_atomic_int!(AtomicUsize, usize);

impl AtomicBool {
    /// Bitwise-ors, returning the previous value.
    #[inline]
    pub fn fetch_or(&self, value: bool, order: Ordering) -> bool {
        self.inner.fetch_or(value, order)
    }

    /// Bitwise-ands, returning the previous value.
    #[inline]
    pub fn fetch_and(&self, value: bool, order: Ordering) -> bool {
        self.inner.fetch_and(value, order)
    }
}

/// Thread management routed through the facade.
pub mod thread {
    /// Handle to a spawned facade thread.
    #[derive(Debug)]
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its result
        /// (`Err` carries the panic payload, as with `std`).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }

        /// True once the thread has finished executing.
        pub fn is_finished(&self) -> bool {
            self.inner.is_finished()
        }
    }

    /// Spawns a new thread running `f`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        JoinHandle {
            inner: std::thread::spawn(f),
        }
    }

    /// Thread factory with configuration (name, stack size).
    #[derive(Debug)]
    pub struct Builder {
        inner: std::thread::Builder,
    }

    impl Default for Builder {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Builder {
        /// Creates a builder with default configuration.
        pub fn new() -> Self {
            Builder {
                inner: std::thread::Builder::new(),
            }
        }

        /// Names the thread.
        pub fn name(self, name: String) -> Self {
            Builder {
                inner: self.inner.name(name),
            }
        }

        /// Spawns the thread; errors if the OS refuses.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            Ok(JoinHandle {
                inner: self.inner.spawn(f)?,
            })
        }
    }

    /// Puts the current thread to sleep for `dur`.
    pub fn sleep(dur: std::time::Duration) {
        std::thread::sleep(dur)
    }

    /// Cooperatively yields the current thread's timeslice.
    pub fn yield_now() {
        std::thread::yield_now()
    }

    /// An estimate of the parallelism the host offers.
    pub fn available_parallelism() -> std::io::Result<std::num::NonZeroUsize> {
        std::thread::available_parallelism()
    }
}
