//! `qcm-sync`: the single concurrency facade for the whole workspace.
//!
//! Every crate in this repository imports its locks, condvars, atomics
//! and thread spawns from here instead of `std::sync` / `std::thread`
//! (the `qcm-lint` tool enforces this). The payoff is a build-time
//! switch:
//!
//! * **Default build** — [`pass`-through wrappers](crate::Mutex): thin
//!   newtypes over `std` with a non-poisoning (parking_lot-style) API.
//!   Everything is `#[inline]` and `#[repr(transparent)]` where it can
//!   be; there is no runtime cost.
//! * **`model-check` feature** — the same API routed through a
//!   deterministic schedule-exploration scheduler (the `model` module): seeded
//!   pseudo-random interleavings with bounded preemptions, vector-clock
//!   diagnostics for unsynchronised atomic communication, deadlock and
//!   lost-wakeup detection, and replayable failing schedules (a failure
//!   report prints the seed; re-running the seed reproduces the
//!   identical decision trace).
//!
//! Checked types degrade gracefully: on a thread that is not
//! participating in a schedule (`model::check_seed` / `model::explore`
//! not active) they behave exactly like the passthrough build, so a
//! binary accidentally compiled with the feature still works.
//!
//! ```
//! use qcm_sync::{Mutex, thread};
//!
//! let shared = std::sync::Arc::new(Mutex::new(0u64));
//! let worker = {
//!     let shared = shared.clone();
//!     thread::spawn(move || *shared.lock() += 1)
//! };
//! worker.join().unwrap();
//! assert_eq!(*shared.lock(), 1);
//! ```

#[cfg(not(feature = "model-check"))]
mod pass;
#[cfg(not(feature = "model-check"))]
pub use pass::{thread, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(feature = "model-check")]
mod checked;
#[cfg(feature = "model-check")]
pub mod model;
#[cfg(feature = "model-check")]
pub use checked::{thread, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Atomic types routed through the facade — the drop-in replacement for
/// `std::sync::atomic`.
pub mod atomic {
    #[cfg(not(feature = "model-check"))]
    pub use crate::pass::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

    #[cfg(feature = "model-check")]
    pub use crate::checked::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}

// Shared-ownership types carry no scheduling decisions, so the std
// types are re-exported as-is; importing them from `qcm-sync` keeps
// call sites on a single `use` line and inside the lint policy.
pub use std::sync::{Arc, OnceLock, Weak};

/// Best-effort rendering of a panic payload for failure reports.
#[cfg(feature = "model-check")]
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}
