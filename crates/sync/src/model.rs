//! The deterministic schedule-exploration engine behind the
//! `model-check` feature.
//!
//! # How it works
//!
//! A `Scheduler` serialises a multi-threaded test body: at every
//! *schedule point* (each lock, unlock, condvar operation, atomic
//! access, spawn and join routed through the facade) exactly one thread
//! is running and the scheduler decides — from a seeded PRNG — which
//! thread runs next. Every decision is appended to a trace, so a
//! failing schedule is fully described by its seed (re-running the same
//! seed reproduces the identical decision trace, which
//! [`check_seed`] exposes for assertions and failure reports print).
//!
//! Three failure classes are detected:
//!
//! * **assertion failures / panics** in any participating thread, with
//!   the schedule that produced them;
//! * **deadlocks**: every live thread blocked on a lock, condvar or
//!   join (this includes the classic lost-wakeup: a `notify_one` that
//!   fires before the waiter sleeps is *not* remembered, exactly like
//!   the real primitive);
//! * **unsynchronised atomic communication**: a vector clock per thread
//!   and a last-writer record per atomic location flag any load that
//!   observes another thread's store without a happens-before edge
//!   (Release store → Acquire load, or transitively through locks,
//!   spawn and join). These are advisory diagnostics by default —
//!   relaxed statistics counters are legitimate — and hard failures
//!   under [`ModelConfig::strict`].
//!
//! # Model boundaries
//!
//! The checker explores *interleavings*, not weak-memory value
//! reorderings: atomic cells always hold the latest written value
//! (sequentially consistent storage), and `Ordering` choices feed the
//! happens-before/diagnostic layer rather than a store-buffer
//! simulation. Preemptions (switching away from a thread that could
//! continue) are bounded per schedule, which is what makes random
//! exploration effective in practice: most real concurrency bugs need
//! only a few preemptions at the right points.

use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicUsize, Ordering as StdOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Sentinel panic payload used to unwind threads of an aborted
/// schedule without reporting a spurious user panic.
pub(crate) struct ModelAbort;

/// A source location captured with `#[track_caller]`.
pub(crate) type Site = &'static Location<'static>;

/// Identifier allocators for atomics / mutexes / condvars. Ids are
/// process-global (so `static` facade primitives work across schedules)
/// while the per-id state lives in the per-schedule tables.
pub(crate) static NEXT_OBJECT_ID: AtomicUsize = AtomicUsize::new(1);

/// Tuning knobs of one exploration run.
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// Maximum involuntary context switches per schedule (switching
    /// away from a thread that could have continued). Voluntary
    /// switches — the running thread blocking — are always allowed.
    pub max_preemptions: usize,
    /// Hard bound on schedule points per schedule; exceeding it fails
    /// the schedule as a livelock.
    pub max_steps: u64,
    /// Treat unsynchronised-atomic diagnostics as schedule failures.
    pub fail_on_unsync: bool,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            max_preemptions: 6,
            max_steps: 200_000,
            fail_on_unsync: false,
        }
    }
}

impl ModelConfig {
    /// A configuration where any unsynchronised atomic communication
    /// fails the schedule.
    pub fn strict() -> Self {
        ModelConfig {
            fail_on_unsync: true,
            ..ModelConfig::default()
        }
    }
}

/// Everything known about one explored schedule.
#[derive(Clone, Debug)]
pub struct ScheduleResult {
    /// The PRNG seed that produced this schedule.
    pub seed: u64,
    /// The decision trace: every nondeterministic choice made, in
    /// order. Re-running the same seed reproduces this exactly.
    pub trace: Vec<usize>,
    /// Schedule points executed.
    pub steps: u64,
    /// The failure, if the schedule found one.
    pub failure: Option<String>,
    /// Unsynchronised-atomic diagnostics (advisory unless
    /// [`ModelConfig::fail_on_unsync`]).
    pub diagnostics: Vec<String>,
}

/// Aggregate of a whole exploration run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Schedules explored.
    pub schedules: usize,
    /// Total schedule points across all schedules.
    pub total_steps: u64,
    /// Distinct unsynchronised-atomic diagnostics across all schedules.
    pub diagnostics: Vec<String>,
}

#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    fn bump(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Run {
    Runnable,
    BlockedMutex(usize),
    BlockedCondvar(usize),
    BlockedJoin(usize),
    Finished,
}

#[derive(Debug)]
struct ThreadInfo {
    run: Run,
    clock: VClock,
}

#[derive(Debug, Default)]
struct MutexInfo {
    holder: Option<usize>,
    /// Clock released into the mutex by the last unlock; joined by the
    /// next lock (the lock's happens-before edge).
    clock: VClock,
}

#[derive(Debug, Default)]
struct CondvarInfo {
    waiters: Vec<usize>,
}

#[derive(Debug)]
struct StoreEvent {
    tid: usize,
    /// The storing thread's own clock component at the store.
    stamp: u64,
    /// The storing thread's full clock, when the store had release
    /// semantics (what an acquire load joins).
    release: Option<VClock>,
    site: Site,
    order: std::sync::atomic::Ordering,
}

#[derive(Debug, Default)]
struct LocInfo {
    last_store: Option<StoreEvent>,
}

struct SchedState {
    seed: u64,
    rng: u64,
    cfg: ModelConfig,
    threads: Vec<ThreadInfo>,
    /// The one thread allowed to execute; `usize::MAX` once everything
    /// finished.
    active: usize,
    /// Registered threads that have not yet left the harness (includes
    /// the main test body as thread 0).
    live: usize,
    trace: Vec<usize>,
    steps: u64,
    preemptions_left: usize,
    mutexes: HashMap<usize, MutexInfo>,
    condvars: HashMap<usize, CondvarInfo>,
    locs: HashMap<usize, LocInfo>,
    failure: Option<String>,
    diagnostics: Vec<String>,
    /// (load site, store site) pairs already reported, to keep loops
    /// from flooding the diagnostics.
    reported: Vec<(Site, Site)>,
}

impl SchedState {
    fn next_u64(&mut self) -> u64 {
        // splitmix64: tiny, seedable, good enough for schedule sampling.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// One recorded nondeterministic choice among `n` alternatives.
    fn decide(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        let choice = (self.next_u64() % n as u64) as usize;
        self.trace.push(choice);
        choice
    }

    fn runnable(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.run == Run::Runnable)
            .map(|(tid, _)| tid)
            .collect()
    }

    fn fail(&mut self, message: String) {
        if self.failure.is_none() {
            self.failure = Some(message);
        }
    }

    /// Picks the next active thread. The caller has already updated
    /// `threads[me].run` and must notify the scheduler condvar after
    /// releasing the state lock.
    fn reschedule(&mut self, me: usize) {
        if self.failure.is_some() {
            return;
        }
        let runnable = self.runnable();
        if runnable.is_empty() {
            if self.threads.iter().all(|t| t.run == Run::Finished) {
                self.active = usize::MAX;
            } else {
                let stuck: Vec<String> = self
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.run != Run::Finished)
                    .map(|(tid, t)| format!("thread {tid} {:?}", t.run))
                    .collect();
                self.fail(format!(
                    "deadlock: every live thread is blocked ({})",
                    stuck.join(", ")
                ));
            }
            return;
        }
        let me_runnable = self.threads.get(me).is_some_and(|t| t.run == Run::Runnable);
        let next = if me_runnable && self.preemptions_left == 0 {
            me
        } else {
            runnable[self.decide(runnable.len())]
        };
        if me_runnable && next != me {
            self.preemptions_left = self.preemptions_left.saturating_sub(1);
        }
        self.active = next;
    }

    fn count_step(&mut self) {
        self.steps += 1;
        if self.steps > self.cfg.max_steps {
            self.fail(format!(
                "livelock: schedule exceeded {} schedule points",
                self.cfg.max_steps
            ));
        }
    }
}

/// The per-schedule scheduler shared by every participating thread.
pub(crate) struct Scheduler {
    state: StdMutex<SchedState>,
    cv: StdCondvar,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

/// This thread's participation handle in a running schedule.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) sched: Arc<Scheduler>,
    pub(crate) tid: usize,
}

/// The calling thread's scheduler context, if it participates in a
/// schedule.
pub(crate) fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(value: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = value);
}

/// Installs the scheduler context on the current (child) thread.
pub(crate) fn enter_thread(value: Ctx) {
    set_ctx(Some(value));
}

/// Clears the scheduler context before the thread exits.
pub(crate) fn leave_thread() {
    set_ctx(None);
}

/// Allocates a fresh process-global object id for a facade primitive.
pub(crate) fn fresh_object_id() -> usize {
    NEXT_OBJECT_ID.fetch_add(1, StdOrdering::Relaxed)
}

fn is_acquire(order: std::sync::atomic::Ordering) -> bool {
    use std::sync::atomic::Ordering::*;
    matches!(order, Acquire | AcqRel | SeqCst)
}

fn is_release(order: std::sync::atomic::Ordering) -> bool {
    use std::sync::atomic::Ordering::*;
    matches!(order, Release | AcqRel | SeqCst)
}

impl Scheduler {
    fn new(seed: u64, cfg: ModelConfig) -> Scheduler {
        let max_preemptions = cfg.max_preemptions;
        Scheduler {
            state: StdMutex::new(SchedState {
                seed,
                rng: seed ^ 0xA076_1D64_78BD_642F,
                cfg,
                threads: vec![ThreadInfo {
                    run: Run::Runnable,
                    clock: VClock::default(),
                }],
                active: 0,
                live: 1,
                trace: Vec::new(),
                steps: 0,
                preemptions_left: max_preemptions,
                mutexes: HashMap::new(),
                condvars: HashMap::new(),
                locs: HashMap::new(),
                failure: None,
                diagnostics: Vec::new(),
                reported: Vec::new(),
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock_state(&self) -> StdMutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until `me` is the active thread. Panics with [`ModelAbort`]
    /// when the schedule has failed (so the thread unwinds out of the
    /// test body promptly).
    fn wait_turn<'a>(
        &'a self,
        mut st: StdMutexGuard<'a, SchedState>,
        me: usize,
    ) -> StdMutexGuard<'a, SchedState> {
        loop {
            if st.failure.is_some() {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.active == me {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Like [`Scheduler::wait_turn`] but never panics — for paths that
    /// run inside `Drop` during unwinding (a double panic would abort
    /// the process). On failure it simply returns; mutual exclusion is
    /// moot on a failed schedule that is tearing down.
    fn wait_turn_or_give_up<'a>(
        &'a self,
        mut st: StdMutexGuard<'a, SchedState>,
        me: usize,
    ) -> StdMutexGuard<'a, SchedState> {
        loop {
            if st.failure.is_some() || st.active == me {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A plain schedule point: the running thread stays runnable, the
    /// scheduler may hand the token to any runnable thread.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut st = self.lock_state();
        st = self.wait_turn(st, me);
        st.count_step();
        st.reschedule(me);
        drop(st);
        self.cv.notify_all();
        let st = self.lock_state();
        let _st = self.wait_turn(st, me);
    }

    // ---- threads ----------------------------------------------------

    /// Registers a child thread spawned by `parent`; the child starts
    /// runnable and inherits the parent's clock (spawn happens-before
    /// everything in the child).
    pub(crate) fn register_thread(&self, parent: usize) -> usize {
        let mut st = self.lock_state();
        let mut clock = st.threads[parent].clock.clone();
        st.threads[parent].clock.bump(parent);
        let tid = st.threads.len();
        clock.bump(tid);
        st.threads.push(ThreadInfo {
            run: Run::Runnable,
            clock,
        });
        st.live += 1;
        tid
    }

    /// First schedule of a child thread: parks until the scheduler
    /// hands it the token.
    pub(crate) fn first_schedule(&self, me: usize) {
        let st = self.lock_state();
        let _st = self.wait_turn(st, me);
    }

    /// Normal thread completion.
    pub(crate) fn thread_finish(&self, me: usize) {
        let mut st = self.lock_state();
        st.threads[me].clock.bump(me);
        st.threads[me].run = Run::Finished;
        for t in st.threads.iter_mut() {
            if t.run == Run::BlockedJoin(me) {
                t.run = Run::Runnable;
            }
        }
        st.count_step();
        st.reschedule(me);
        st.live -= 1;
        drop(st);
        self.cv.notify_all();
    }

    /// Rolls back a [`Scheduler::register_thread`] whose OS spawn
    /// failed: the slot is marked finished so the live count drains.
    pub(crate) fn unregister_thread(&self, tid: usize) {
        let mut st = self.lock_state();
        st.threads[tid].run = Run::Finished;
        st.live -= 1;
        drop(st);
        self.cv.notify_all();
    }

    /// Thread exit while unwinding from a [`ModelAbort`]: bookkeeping
    /// only, no rescheduling (the schedule already failed).
    pub(crate) fn thread_exit_after_abort(&self, me: usize) {
        let mut st = self.lock_state();
        st.threads[me].run = Run::Finished;
        st.live -= 1;
        drop(st);
        self.cv.notify_all();
    }

    /// Thread exit via a user panic: records the failure (with the
    /// decision trace) and tears the schedule down.
    pub(crate) fn thread_panicked(&self, me: usize, message: String) {
        let mut st = self.lock_state();
        st.fail(format!("thread {me} panicked: {message}"));
        st.threads[me].run = Run::Finished;
        st.live -= 1;
        drop(st);
        self.cv.notify_all();
    }

    /// Blocks `me` until `target` finishes; join creates a
    /// happens-before edge from everything `target` did.
    pub(crate) fn thread_join(&self, me: usize, target: usize) {
        self.yield_point(me);
        loop {
            let mut st = self.lock_state();
            st = self.wait_turn(st, me);
            if st.threads[target].run == Run::Finished {
                let target_clock = st.threads[target].clock.clone();
                st.threads[me].clock.join(&target_clock);
                return;
            }
            st.threads[me].run = Run::BlockedJoin(target);
            st.count_step();
            st.reschedule(me);
            drop(st);
            self.cv.notify_all();
        }
    }

    // ---- mutexes ----------------------------------------------------

    /// Model-acquires mutex `mid` for `me`, blocking while held.
    pub(crate) fn mutex_lock(&self, me: usize, mid: usize) {
        self.yield_point(me);
        loop {
            let mut st = self.lock_state();
            st = self.wait_turn(st, me);
            let info = st.mutexes.entry(mid).or_default();
            if info.holder.is_none() {
                info.holder = Some(me);
                let mutex_clock = info.clock.clone();
                st.threads[me].clock.join(&mutex_clock);
                return;
            }
            if info.holder == Some(me) {
                st.fail(format!(
                    "thread {me} deadlocked re-locking a mutex it already holds"
                ));
                drop(st);
                self.cv.notify_all();
                std::panic::panic_any(ModelAbort);
            }
            st.threads[me].run = Run::BlockedMutex(mid);
            st.count_step();
            st.reschedule(me);
            drop(st);
            self.cv.notify_all();
        }
    }

    /// Non-blocking model acquire; `true` on success.
    pub(crate) fn mutex_try_lock(&self, me: usize, mid: usize) -> bool {
        self.yield_point(me);
        let guard = self.lock_state();
        let mut guard = self.wait_turn(guard, me);
        let st = &mut *guard;
        let info = st.mutexes.entry(mid).or_default();
        if info.holder.is_none() {
            info.holder = Some(me);
            let mutex_clock = info.clock.clone();
            st.threads[me].clock.join(&mutex_clock);
            true
        } else {
            false
        }
    }

    /// Model-releases mutex `mid`. Runs inside guard `Drop`, so it must
    /// never panic: on a failed schedule it degrades to bookkeeping.
    pub(crate) fn mutex_unlock(&self, me: usize, mid: usize) {
        let mut st = self.lock_state();
        st = self.wait_turn_or_give_up(st, me);
        st.threads[me].clock.bump(me);
        let my_clock = st.threads[me].clock.clone();
        let info = st.mutexes.entry(mid).or_default();
        debug_assert_eq!(info.holder, Some(me), "unlock by non-holder");
        info.holder = None;
        info.clock.join(&my_clock);
        for t in st.threads.iter_mut() {
            if t.run == Run::BlockedMutex(mid) {
                t.run = Run::Runnable;
            }
        }
        st.count_step();
        st.reschedule(me);
        drop(st);
        self.cv.notify_all();
        let st = self.lock_state();
        let _st = self.wait_turn_or_give_up(st, me);
    }

    // ---- condvars ---------------------------------------------------

    /// Atomically releases mutex `mid`, parks on condvar `cvid`, and —
    /// once notified — re-acquires the mutex. Exactly the lost-wakeup
    /// semantics of the real primitive: a notify with no parked waiter
    /// is forgotten.
    pub(crate) fn condvar_wait(&self, me: usize, cvid: usize, mid: usize) {
        let mut st = self.lock_state();
        st = self.wait_turn(st, me);
        // Release the mutex (release edge + wake lock waiters).
        st.threads[me].clock.bump(me);
        let my_clock = st.threads[me].clock.clone();
        let minfo = st.mutexes.entry(mid).or_default();
        debug_assert_eq!(minfo.holder, Some(me), "condvar wait without the lock");
        minfo.holder = None;
        minfo.clock.join(&my_clock);
        for t in st.threads.iter_mut() {
            if t.run == Run::BlockedMutex(mid) {
                t.run = Run::Runnable;
            }
        }
        // Park on the condvar.
        st.condvars.entry(cvid).or_default().waiters.push(me);
        st.threads[me].run = Run::BlockedCondvar(cvid);
        st.count_step();
        st.reschedule(me);
        drop(st);
        self.cv.notify_all();
        {
            let st = self.lock_state();
            let _st = self.wait_turn(st, me);
        }
        // Notified and scheduled: take the mutex back.
        self.mutex_relock_after_wait(me, mid);
    }

    /// The re-acquire half of [`Scheduler::condvar_wait`] (no leading
    /// yield point: waking from a wait *is* the schedule point).
    fn mutex_relock_after_wait(&self, me: usize, mid: usize) {
        loop {
            let mut st = self.lock_state();
            st = self.wait_turn(st, me);
            let info = st.mutexes.entry(mid).or_default();
            if info.holder.is_none() {
                info.holder = Some(me);
                let mutex_clock = info.clock.clone();
                st.threads[me].clock.join(&mutex_clock);
                return;
            }
            st.threads[me].run = Run::BlockedMutex(mid);
            st.count_step();
            st.reschedule(me);
            drop(st);
            self.cv.notify_all();
        }
    }

    /// Wakes one (scheduler-chosen) or all threads parked on `cvid`.
    pub(crate) fn condvar_notify(&self, me: usize, cvid: usize, all: bool) {
        self.yield_point(me);
        let guard = self.lock_state();
        let mut guard = self.wait_turn(guard, me);
        let st = &mut *guard;
        let waiting = st.condvars.entry(cvid).or_default().waiters.len();
        let woken: Vec<usize> = if waiting == 0 {
            Vec::new()
        } else if all {
            std::mem::take(&mut st.condvars.entry(cvid).or_default().waiters)
        } else {
            let idx = st.decide(waiting);
            vec![st
                .condvars
                .entry(cvid)
                .or_default()
                .waiters
                .swap_remove(idx)]
        };
        for w in woken {
            st.threads[w].run = Run::Runnable;
        }
        drop(guard);
        self.cv.notify_all();
    }

    // ---- atomics ----------------------------------------------------

    /// An atomic load: acquire loads join the release clock of the
    /// store they observe; any cross-thread observation without a
    /// happens-before edge is diagnosed.
    pub(crate) fn atomic_load(
        &self,
        me: usize,
        loc: usize,
        order: std::sync::atomic::Ordering,
        site: Site,
    ) {
        self.yield_point(me);
        let guard = self.lock_state();
        let mut guard = self.wait_turn(guard, me);
        let st = &mut *guard;
        let Some(ev) = st.locs.entry(loc).or_default().last_store.take() else {
            return;
        };
        let mut abort = false;
        if ev.tid != me {
            let synced_already = st.threads[me].clock.get(ev.tid) >= ev.stamp;
            if is_acquire(order) && ev.release.is_some() {
                let release = ev.release.clone().expect("checked is_some");
                st.threads[me].clock.join(&release);
            } else if !synced_already {
                let pair = (site, ev.site);
                if !st.reported.contains(&pair) {
                    st.reported.push(pair);
                    let msg = format!(
                        "unsynchronised atomic communication: {:?} load at {} observed {:?} store at {} (thread {} -> {}) with no happens-before edge",
                        order, site, ev.order, ev.site, ev.tid, me
                    );
                    st.diagnostics.push(msg.clone());
                    if st.cfg.fail_on_unsync {
                        st.fail(msg);
                        abort = true;
                    }
                }
            }
        }
        st.locs.entry(loc).or_default().last_store = Some(ev);
        drop(guard);
        if abort {
            self.cv.notify_all();
            std::panic::panic_any(ModelAbort);
        }
    }

    /// An atomic store: release stores publish the thread's clock.
    pub(crate) fn atomic_store(
        &self,
        me: usize,
        loc: usize,
        order: std::sync::atomic::Ordering,
        site: Site,
    ) {
        self.yield_point(me);
        let guard = self.lock_state();
        let mut guard = self.wait_turn(guard, me);
        let st = &mut *guard;
        st.threads[me].clock.bump(me);
        let stamp = st.threads[me].clock.get(me);
        let release = is_release(order).then(|| st.threads[me].clock.clone());
        st.locs.entry(loc).or_default().last_store = Some(StoreEvent {
            tid: me,
            stamp,
            release,
            site,
            order,
        });
    }

    /// A read-modify-write (`fetch_add`, `swap`, `compare_exchange`,
    /// …): one schedule point covering both halves. RMWs always read
    /// the latest value in modification order, so the read half joins
    /// clocks on acquire but is never diagnosed as unsynchronised;
    /// the write half publishes on release.
    pub(crate) fn atomic_rmw(
        &self,
        me: usize,
        loc: usize,
        order: std::sync::atomic::Ordering,
        site: Site,
    ) {
        self.yield_point(me);
        let guard = self.lock_state();
        let mut guard = self.wait_turn(guard, me);
        let st = &mut *guard;
        if is_acquire(order) {
            if let Some(release) = st
                .locs
                .entry(loc)
                .or_default()
                .last_store
                .as_ref()
                .and_then(|ev| ev.release.clone())
            {
                st.threads[me].clock.join(&release);
            }
        }
        st.threads[me].clock.bump(me);
        let stamp = st.threads[me].clock.get(me);
        let release = is_release(order).then(|| st.threads[me].clock.clone());
        st.locs.entry(loc).or_default().last_store = Some(StoreEvent {
            tid: me,
            stamp,
            release,
            site,
            order,
        });
    }
}

// ---- public entry points --------------------------------------------

fn run_one(seed: u64, cfg: ModelConfig, f: &(dyn Fn() + Sync)) -> ScheduleResult {
    let sched = Arc::new(Scheduler::new(seed, cfg));
    set_ctx(Some(Ctx {
        sched: sched.clone(),
        tid: 0,
    }));
    let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    match body {
        Ok(()) => sched.thread_finish(0),
        Err(payload) => {
            if payload.downcast_ref::<ModelAbort>().is_some() {
                sched.thread_exit_after_abort(0);
            } else {
                sched.thread_panicked(0, crate::panic_message(payload.as_ref()).to_string());
            }
        }
    }
    // Reap: wait for every participating OS thread to leave the
    // harness before reading the final state.
    {
        let mut st = sched.lock_state();
        while st.live > 0 {
            st = sched.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
    set_ctx(None);
    let st = sched.lock_state();
    ScheduleResult {
        seed: st.seed,
        trace: st.trace.clone(),
        steps: st.steps,
        failure: st.failure.clone(),
        diagnostics: st.diagnostics.clone(),
    }
}

/// Runs `f` once under the scheduler with an explicit `seed` and
/// returns everything about the schedule — including its decision
/// trace, which is identical on every run of the same seed.
pub fn check_seed(seed: u64, cfg: ModelConfig, f: impl Fn() + Sync) -> ScheduleResult {
    run_one(seed, cfg, &f)
}

/// The base seed for exploration: `QCM_MC_SEED` or 1.
pub fn base_seed() -> u64 {
    std::env::var("QCM_MC_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Extra seeds appended to every exploration (`QCM_MC_EXTRA_SEED`,
/// comma-separated) — CI logs one random value here so every green run
/// still documents a reproducible novel schedule set.
pub fn extra_seeds() -> Vec<u64> {
    std::env::var("QCM_MC_EXTRA_SEED")
        .map(|s| {
            s.split(',')
                .filter_map(|part| part.trim().parse().ok())
                .collect()
        })
        .unwrap_or_default()
}

fn failure_message(name: &str, result: &ScheduleResult) -> String {
    format!(
        "model-check failure in scenario '{name}' (seed {seed}):\n  {failure}\n  \
         decision trace ({points} points): {trace:?}\n  \
         replay with: qcm_sync::model::check_seed({seed}, ...) or QCM_MC_SEED={seed}",
        seed = result.seed,
        failure = result.failure.as_deref().unwrap_or("<none>"),
        points = result.trace.len(),
        trace = result.trace,
    )
}

/// Explores `schedules` seeded schedules of `f` (seeds
/// `base_seed()..base_seed()+schedules`, plus any [`extra_seeds`]).
/// Panics on the first failing schedule with its seed and decision
/// trace; returns the aggregate [`Report`] when everything passes.
pub fn explore(name: &str, schedules: usize, cfg: ModelConfig, f: impl Fn() + Sync) -> Report {
    let base = base_seed();
    let seeds: Vec<u64> = (0..schedules as u64)
        .map(|i| base.wrapping_add(i))
        .chain(extra_seeds())
        .collect();
    explore_seeds(name, &seeds, cfg, f)
}

/// [`explore`] over an explicit seed list.
pub fn explore_seeds(name: &str, seeds: &[u64], cfg: ModelConfig, f: impl Fn() + Sync) -> Report {
    let mut report = Report::default();
    for &seed in seeds {
        let result = run_one(seed, cfg.clone(), &f);
        if result.failure.is_some() {
            panic!("{}", failure_message(name, &result));
        }
        report.schedules += 1;
        report.total_steps += result.steps;
        for d in result.diagnostics {
            if !report.diagnostics.contains(&d) {
                report.diagnostics.push(d);
            }
        }
    }
    report
}

/// Explores up to `schedules` schedules and returns the first failing
/// one (`None` when all pass) — for tests that *expect* to find a bug.
pub fn find_failure(
    schedules: usize,
    cfg: ModelConfig,
    f: impl Fn() + Sync,
) -> Option<ScheduleResult> {
    let base = base_seed();
    (0..schedules as u64)
        .map(|i| run_one(base.wrapping_add(i), cfg.clone(), &f))
        .find(|r| r.failure.is_some())
}
