//! Edge-list I/O.
//!
//! The paper's datasets are distributed as SNAP-style whitespace-separated
//! edge lists. This module parses and writes that format and additionally
//! supports a compact binary format used by the engine's spill files and by
//! the experiment harness for caching generated graphs.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::vertex::VertexId;
use crate::Result;

/// Parses a SNAP-style edge list from a reader.
///
/// * Lines starting with `#` or `%` are comments.
/// * Blank lines are skipped.
/// * Each data line holds two whitespace-separated vertex ids (extra columns,
///   e.g. weights/timestamps, are ignored).
/// * Vertex ids need not be dense: they are compacted to `0..n` in first-seen
///   order of the sorted distinct ids, so the same file always produces the
///   same graph.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph> {
    let reader = BufReader::new(reader);
    let mut raw_edges: Vec<(u64, u64)> = Vec::new();
    let mut ids: Vec<u64> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let a = parse_id(parts.next(), lineno + 1)?;
        let b = parse_id(parts.next(), lineno + 1)?;
        raw_edges.push((a, b));
        ids.push(a);
        ids.push(b);
    }
    ids.sort_unstable();
    ids.dedup();
    if ids.len() > u32::MAX as usize {
        return Err(GraphError::TooManyVertices(ids.len()));
    }
    let mut builder = GraphBuilder::with_capacity(ids.len(), raw_edges.len());
    builder.set_min_vertices(ids.len());
    for (a, b) in raw_edges {
        let la = ids.binary_search(&a).expect("id must exist") as u32;
        let lb = ids.binary_search(&b).expect("id must exist") as u32;
        builder.add_edge_raw(la, lb);
    }
    Ok(builder.build())
}

fn parse_id(token: Option<&str>, line: usize) -> Result<u64> {
    let token = token.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected two vertex ids".to_string(),
    })?;
    token.parse::<u64>().map_err(|e| GraphError::Parse {
        line,
        message: format!("invalid vertex id {token:?}: {e}"),
    })
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<Graph> {
    let file = File::open(path)?;
    read_edge_list(file)
}

/// Loads a graph from bytes in either supported on-disk format, sniffing the
/// `QCMGRPH` magic: a binary snapshot goes through the checksummed
/// [`read_binary`] loader (corrupt files are rejected with a typed error),
/// anything else is parsed as a SNAP-style edge list. This is the loader
/// behind the CLI and the service graph registries.
pub fn read_auto(bytes: &[u8]) -> Result<Graph> {
    if bytes.starts_with(BINARY_MAGIC) {
        read_binary(bytes)
    } else {
        read_edge_list(bytes)
    }
}

/// [`read_auto`] over a file path.
pub fn read_auto_file<P: AsRef<Path>>(path: P) -> Result<Graph> {
    let bytes = std::fs::read(path)?;
    read_auto(&bytes)
}

/// Writes the graph as a SNAP-style edge list (one `u v` pair per line, each
/// undirected edge written once, preceded by a summary comment).
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# Undirected graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{}\t{}", u.raw(), v.raw())?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the graph as an edge list to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &Graph, path: P) -> Result<()> {
    let file = File::create(path)?;
    write_edge_list(g, file)
}

/// Shared 7-byte magic prefix of every binary graph snapshot; the eighth byte
/// is the format version.
const BINARY_MAGIC: &[u8; 7] = b"QCMGRPH";
/// Current snapshot version: checksummed, with header sanity checks.
const BINARY_VERSION: u8 = 2;
/// The pre-checksum version-1 tag (written as the ASCII digit `1` — version 1
/// used the 8-byte magic `QCMGRPH1`). Still readable for old snapshots.
const BINARY_VERSION_LEGACY: u8 = b'1';

/// Writes the graph in a compact little-endian binary snapshot:
/// `"QCMGRPH" | version: u8 | n: u64 | m: u64 | degrees: [u32; n] |
/// neighbors: [u32; sum(deg)] | checksum: u64`.
///
/// The trailing checksum is the FNV-1a hash ([`crate::hash::Fnv1a64`]) of
/// every byte between the version byte and the checksum itself, so
/// [`read_binary`] detects truncation and bit corruption instead of
/// constructing a garbage graph.
pub fn write_binary<W: Write>(g: &Graph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&[BINARY_VERSION])?;
    let mut hash = crate::hash::Fnv1a64::new();
    write_hashed_u64(&mut w, &mut hash, g.num_vertices() as u64)?;
    write_hashed_u64(&mut w, &mut hash, g.num_edges() as u64)?;
    for v in g.vertices() {
        write_hashed_u32(&mut w, &mut hash, g.degree(v) as u32)?;
    }
    for v in g.vertices() {
        for &u in g.neighbors(v) {
            write_hashed_u32(&mut w, &mut hash, u.raw())?;
        }
    }
    w.write_all(&hash.finish().to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Reads a graph written by [`write_binary`].
///
/// Accepts the current checksummed version-2 format and the legacy
/// pre-checksum version 1. Truncated input, an unsupported version byte,
/// inconsistent header counts (degree sum ≠ 2·m), out-of-range neighbor ids
/// and (for version 2) a checksum mismatch all return a [`GraphError`]
/// instead of panicking or yielding a corrupt graph — this is the safe load
/// path for service graph registries and cached snapshots.
pub fn read_binary<R: Read>(reader: R) -> Result<Graph> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic[..7] != BINARY_MAGIC {
        return Err(GraphError::Format {
            message: "bad magic header for binary graph".to_string(),
        });
    }
    let checksummed = match magic[7] {
        BINARY_VERSION => true,
        BINARY_VERSION_LEGACY => false,
        other => {
            return Err(GraphError::Format {
                message: format!(
                    "unsupported binary graph version {other} (supported: 1 and {BINARY_VERSION})"
                ),
            })
        }
    };
    let mut hash = crate::hash::Fnv1a64::new();
    let n64 = read_hashed_u64(&mut r, &mut hash)?;
    if n64 > u32::MAX as u64 {
        return Err(GraphError::Format {
            message: format!("vertex count {n64} exceeds the u32 id space"),
        });
    }
    let n = n64 as usize;
    let declared_edges = read_hashed_u64(&mut r, &mut hash)?;
    // Cap preallocations: a corrupt header must not trigger a huge upfront
    // allocation — the reads below fail fast on EOF long before `Vec` growth
    // reaches a bogus multi-gigabyte count.
    const PREALLOC_CAP: usize = 1 << 22;
    let mut degrees: Vec<u32> = Vec::with_capacity(n.min(PREALLOC_CAP));
    // Checked u64 arithmetic throughout: a corrupt or malicious header must
    // surface as a Format error, never as an overflow panic (debug) or a
    // wrapped value that sneaks past the consistency check (release).
    let mut total_u64 = 0u64;
    for _ in 0..n {
        let d = read_hashed_u32(&mut r, &mut hash)?;
        total_u64 = total_u64
            .checked_add(d as u64)
            .ok_or_else(|| GraphError::Format {
                message: "degree sum overflows u64".to_string(),
            })?;
        degrees.push(d);
    }
    // An undirected CSR stores every edge twice; verify before reading the
    // adjacency payload so a corrupt header fails fast.
    let doubled_edges = declared_edges.checked_mul(2);
    if doubled_edges != Some(total_u64) {
        return Err(GraphError::Format {
            message: format!(
                "degree sum {total_u64} does not match 2 × declared edge count {declared_edges}"
            ),
        });
    }
    let total = usize::try_from(total_u64).map_err(|_| GraphError::Format {
        message: format!("adjacency payload of {total_u64} entries exceeds the address space"),
    })?;
    let mut offsets = vec![0usize; n + 1];
    for i in 0..n {
        offsets[i + 1] = offsets[i] + degrees[i] as usize;
    }
    let mut neighbors = Vec::with_capacity(total.min(PREALLOC_CAP));
    for _ in 0..total {
        let v = read_hashed_u32(&mut r, &mut hash)?;
        if v as usize >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                num_vertices: n,
            });
        }
        neighbors.push(VertexId::new(v));
    }
    if checksummed {
        let mut buf = [0u8; 8];
        r.read_exact(&mut buf)?;
        let declared = u64::from_le_bytes(buf);
        let computed = hash.finish();
        if declared != computed {
            return Err(GraphError::Format {
                message: format!(
                    "checksum mismatch: snapshot declares {declared:#018x}, \
                     payload hashes to {computed:#018x}"
                ),
            });
        }
    }
    Ok(Graph::from_csr(offsets, neighbors))
}

fn write_hashed_u64<W: Write>(w: &mut W, hash: &mut crate::hash::Fnv1a64, v: u64) -> Result<()> {
    let bytes = v.to_le_bytes();
    hash.write(&bytes);
    w.write_all(&bytes)?;
    Ok(())
}

fn write_hashed_u32<W: Write>(w: &mut W, hash: &mut crate::hash::Fnv1a64, v: u32) -> Result<()> {
    let bytes = v.to_le_bytes();
    hash.write(&bytes);
    w.write_all(&bytes)?;
    Ok(())
}

fn read_hashed_u64<R: Read>(r: &mut R, hash: &mut crate::hash::Fnv1a64) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    hash.write(&buf);
    Ok(u64::from_le_bytes(buf))
}

fn read_hashed_u32<R: Read>(r: &mut R, hash: &mut crate::hash::Fnv1a64) -> Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    hash.write(&buf);
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_edge_list() {
        let input = "# comment\n% another comment\n\n1 2\n2 3 17\n10 1\n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        // Distinct ids {1,2,3,10} compact to 4 vertices.
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        g.validate().unwrap();
    }

    #[test]
    fn parse_rejects_garbage() {
        let input = "1 x\n";
        let err = read_edge_list(input.as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));

        let input = "42\n";
        let err = read_edge_list(input.as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.num_edges(), g2.num_edges());
        for (u, v) in g.edges() {
            assert!(g2.has_edge(u, v));
        }
    }

    #[test]
    fn binary_roundtrip_preserves_structure() {
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]).unwrap();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = b"NOTMAGIC\0\0\0\0\0\0\0\0".to_vec();
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, GraphError::Format { .. }));
    }

    #[test]
    fn binary_rejects_unsupported_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(BINARY_MAGIC);
        buf.push(99);
        buf.extend_from_slice(&[0u8; 16]);
        let err = read_binary(buf.as_slice()).unwrap_err();
        let GraphError::Format { message } = err else {
            panic!("expected Format error");
        };
        assert!(message.contains("version 99"), "{message}");
    }

    #[test]
    fn binary_rejects_truncation_everywhere() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Cutting the snapshot at any prefix length must yield an error, never
        // a silently wrong graph.
        for cut in 0..buf.len() {
            let err = read_binary(&buf[..cut]).unwrap_err();
            assert!(
                matches!(err, GraphError::Io(_) | GraphError::Format { .. }),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn binary_detects_bit_corruption_via_checksum() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]).unwrap();
        let mut clean = Vec::new();
        write_binary(&g, &mut clean).unwrap();
        // Flip one payload byte (inside the neighbor section, past the
        // 8-byte magic and 16-byte header) — the checksum must catch it even
        // when the result would still be a structurally plausible graph.
        let mut corrupt = clean.clone();
        let idx = corrupt.len() - 12; // last neighbor word
        corrupt[idx] ^= 0x01;
        let err = read_binary(corrupt.as_slice()).unwrap_err();
        assert!(
            matches!(
                err,
                GraphError::Format { .. } | GraphError::VertexOutOfRange { .. }
            ),
            "unexpected {err:?}"
        );
    }

    #[test]
    fn binary_rejects_inconsistent_header_counts() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Overstate the declared edge count: degree sum no longer matches.
        buf[16..24].copy_from_slice(&100u64.to_le_bytes());
        let err = read_binary(buf.as_slice()).unwrap_err();
        let GraphError::Format { message } = err else {
            panic!("expected Format error");
        };
        assert!(message.contains("degree sum"), "{message}");
    }

    #[test]
    fn binary_rejects_overflowing_edge_count_without_panicking() {
        // declared_edges = 2^63 + m wraps to 2·m under a naive `m * 2`,
        // which would sneak past the degree-sum check on checksum-less v1
        // files; the checked arithmetic must reject it as Format instead.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(b"QCMGRPH1");
        buf.extend_from_slice(&(g.num_vertices() as u64).to_le_bytes());
        let lying_m = (1u64 << 63) + g.num_edges() as u64;
        buf.extend_from_slice(&lying_m.to_le_bytes());
        for v in g.vertices() {
            buf.extend_from_slice(&(g.degree(v) as u32).to_le_bytes());
        }
        for v in g.vertices() {
            for &u in g.neighbors(v) {
                buf.extend_from_slice(&u.raw().to_le_bytes());
            }
        }
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, GraphError::Format { .. }), "{err:?}");
    }

    #[test]
    fn binary_reads_legacy_version1_snapshots() {
        // Version 1 had no checksum: `QCMGRPH1 | n | m | degrees | neighbors`.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(b"QCMGRPH1");
        buf.extend_from_slice(&(g.num_vertices() as u64).to_le_bytes());
        buf.extend_from_slice(&(g.num_edges() as u64).to_le_bytes());
        for v in g.vertices() {
            buf.extend_from_slice(&(g.degree(v) as u32).to_le_bytes());
        }
        for v in g.vertices() {
            for &u in g.neighbors(v) {
                buf.extend_from_slice(&u.raw().to_le_bytes());
            }
        }
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("qcm_graph_io_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test_graph.txt");
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        write_edge_list_file(&g, &path).unwrap();
        let g2 = read_edge_list_file(&path).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn isolated_vertices_are_not_preserved_by_edge_list() {
        // Edge lists cannot represent isolated vertices; only mentioned ids
        // survive a round trip. This documents the (expected) behaviour.
        let g = Graph::from_edges(10, [(0, 1)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.num_vertices(), 2);
    }
}
