//! Edge-list I/O.
//!
//! The paper's datasets are distributed as SNAP-style whitespace-separated
//! edge lists. This module parses and writes that format and additionally
//! supports a compact binary format used by the engine's spill files and by
//! the experiment harness for caching generated graphs.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::vertex::VertexId;
use crate::Result;

/// Parses a SNAP-style edge list from a reader.
///
/// * Lines starting with `#` or `%` are comments.
/// * Blank lines are skipped.
/// * Each data line holds two whitespace-separated vertex ids (extra columns,
///   e.g. weights/timestamps, are ignored).
/// * Vertex ids need not be dense: they are compacted to `0..n` in first-seen
///   order of the sorted distinct ids, so the same file always produces the
///   same graph.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph> {
    let reader = BufReader::new(reader);
    let mut raw_edges: Vec<(u64, u64)> = Vec::new();
    let mut ids: Vec<u64> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let a = parse_id(parts.next(), lineno + 1)?;
        let b = parse_id(parts.next(), lineno + 1)?;
        raw_edges.push((a, b));
        ids.push(a);
        ids.push(b);
    }
    ids.sort_unstable();
    ids.dedup();
    if ids.len() > u32::MAX as usize {
        return Err(GraphError::TooManyVertices(ids.len()));
    }
    let mut builder = GraphBuilder::with_capacity(ids.len(), raw_edges.len());
    builder.set_min_vertices(ids.len());
    for (a, b) in raw_edges {
        let la = ids.binary_search(&a).expect("id must exist") as u32;
        let lb = ids.binary_search(&b).expect("id must exist") as u32;
        builder.add_edge_raw(la, lb);
    }
    Ok(builder.build())
}

fn parse_id(token: Option<&str>, line: usize) -> Result<u64> {
    let token = token.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected two vertex ids".to_string(),
    })?;
    token.parse::<u64>().map_err(|e| GraphError::Parse {
        line,
        message: format!("invalid vertex id {token:?}: {e}"),
    })
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<Graph> {
    let file = File::open(path)?;
    read_edge_list(file)
}

/// Writes the graph as a SNAP-style edge list (one `u v` pair per line, each
/// undirected edge written once, preceded by a summary comment).
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# Undirected graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{}\t{}", u.raw(), v.raw())?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the graph as an edge list to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &Graph, path: P) -> Result<()> {
    let file = File::create(path)?;
    write_edge_list(g, file)
}

/// Magic header for the binary graph format.
const BINARY_MAGIC: &[u8; 8] = b"QCMGRPH1";

/// Writes the graph in a compact little-endian binary format:
/// `magic | n: u64 | m: u64 | degrees: [u32; n] | neighbors: [u32; sum(deg)]`.
pub fn write_binary<W: Write>(g: &Graph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    for v in g.vertices() {
        w.write_all(&(g.degree(v) as u32).to_le_bytes())?;
    }
    for v in g.vertices() {
        for &u in g.neighbors(v) {
            w.write_all(&u.raw().to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a graph written by [`write_binary`].
pub fn read_binary<R: Read>(reader: R) -> Result<Graph> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(GraphError::Parse {
            line: 0,
            message: "bad magic header for binary graph".to_string(),
        });
    }
    let n = read_u64(&mut r)? as usize;
    let declared_edges = read_u64(&mut r)? as usize;
    let mut degrees = vec![0u32; n];
    for d in degrees.iter_mut() {
        *d = read_u32(&mut r)?;
    }
    let total: usize = degrees.iter().map(|&d| d as usize).sum();
    let mut offsets = vec![0usize; n + 1];
    for i in 0..n {
        offsets[i + 1] = offsets[i] + degrees[i] as usize;
    }
    let mut neighbors = Vec::with_capacity(total);
    for _ in 0..total {
        let v = read_u32(&mut r)?;
        if v as usize >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                num_vertices: n,
            });
        }
        neighbors.push(VertexId::new(v));
    }
    let g = Graph::from_csr(offsets, neighbors);
    if g.num_edges() != declared_edges {
        return Err(GraphError::Parse {
            line: 0,
            message: format!(
                "edge count mismatch: header says {declared_edges}, data has {}",
                g.num_edges()
            ),
        });
    }
    Ok(g)
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_edge_list() {
        let input = "# comment\n% another comment\n\n1 2\n2 3 17\n10 1\n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        // Distinct ids {1,2,3,10} compact to 4 vertices.
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        g.validate().unwrap();
    }

    #[test]
    fn parse_rejects_garbage() {
        let input = "1 x\n";
        let err = read_edge_list(input.as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));

        let input = "42\n";
        let err = read_edge_list(input.as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.num_edges(), g2.num_edges());
        for (u, v) in g.edges() {
            assert!(g2.has_edge(u, v));
        }
    }

    #[test]
    fn binary_roundtrip_preserves_structure() {
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]).unwrap();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = b"NOTMAGIC\0\0\0\0\0\0\0\0".to_vec();
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("qcm_graph_io_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test_graph.txt");
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        write_edge_list_file(&g, &path).unwrap();
        let g2 = read_edge_list_file(&path).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn isolated_vertices_are_not_preserved_by_edge_list() {
        // Edge lists cannot represent isolated vertices; only mentioned ids
        // survive a round trip. This documents the (expected) behaviour.
        let g = Graph::from_edges(10, [(0, 1)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.num_vertices(), 2);
    }
}
