//! The hybrid bitset neighborhood index and the shared edge-query trait.
//!
//! Sorted CSR adjacency lists give `O(log d)` edge queries, which is what
//! every backend of the miner paid per `has_edge` before this module existed.
//! Fast in-memory graph analytics engines get their speed from *dense*
//! adjacency structures tuned for repeated set operations: a bitset row per
//! high-degree vertex makes `has_edge` on hubs a single word probe and turns
//! candidate-set intersection into word-parallel ANDs.
//!
//! Storing a bitset row for **every** vertex would cost `O(|V|² / 8)` bytes,
//! so the index is hybrid: only vertices whose degree reaches a threshold get
//! a row, everything else keeps the CSR binary search. With the
//! [`IndexSpec::Auto`] threshold (`max(16, |V| / 64)`) a hub's row is at most
//! ~2× the size of its adjacency slice, bounding the whole index at ~2× the
//! CSR footprint while covering exactly the vertices where `log d` hurts
//! most (the ones every dense candidate set keeps probing).
//!
//! The three consumers share one abstraction, [`Neighborhoods`]: the serial
//! miner and the parallel mining tasks query their task-local
//! [`crate::LocalGraph`] (which carries its own hub rows), and the engine's
//! partitioned vertex table serves the global [`Graph`] through a
//! process-wide [`NeighborhoodIndex`] built once per graph and shared across
//! jobs.

use crate::bitset::VertexBitSet;
use crate::graph::Graph;
use crate::vertex::VertexId;
use qcm_sync::atomic::{AtomicU64, Ordering};
use qcm_sync::Arc;

/// How (and whether) to build a bitset neighborhood index over a graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum IndexSpec {
    /// No bitset rows: every edge query takes the CSR binary-search path.
    Disabled,
    /// Pick the threshold from the graph size: `max(16, |V| / 64)`, which
    /// bounds the index at roughly twice the CSR footprint.
    #[default]
    Auto,
    /// Give a bitset row to every vertex of degree `>= t`. `Threshold(0)`
    /// indexes every vertex (useful in equivalence tests).
    Threshold(usize),
}

impl IndexSpec {
    /// Resolves the spec against a vertex count: `None` means "build no
    /// index", `Some(t)` means "row for every vertex of degree ≥ t".
    pub fn resolve(self, num_vertices: usize) -> Option<usize> {
        match self {
            IndexSpec::Disabled => None,
            IndexSpec::Auto => Some(auto_threshold(num_vertices)),
            IndexSpec::Threshold(t) => Some(t),
        }
    }
}

/// The [`IndexSpec::Auto`] hub threshold for an `n`-vertex graph.
///
/// A bitset row costs `n / 8` bytes; a vertex of degree `d` already stores
/// `4d` adjacency bytes. Requiring `d ≥ n / 64` keeps every row within ~2× of
/// the adjacency slice it shadows; the floor of 16 stops tiny graphs from
/// indexing everything for no measurable gain.
pub fn auto_threshold(n: usize) -> usize {
    (n / 64).max(16)
}

/// Uniform edge-query interface over every graph representation the miner
/// touches: the global CSR [`Graph`], the task-local
/// [`crate::LocalGraph`], the hub-indexed [`NeighborhoodIndex`] and the
/// engine's partitioned vertex table. Having one trait means the mining
/// kernels (expansion loop, bounds, maximality checks) are written once and
/// every backend inherits the bitset fast path.
///
/// Vertex ids are raw `u32`s in the representation's own index space (local
/// indices for a `LocalGraph`, global ids elsewhere).
pub trait Neighborhoods {
    /// One past the largest addressable vertex id.
    fn vertex_capacity(&self) -> usize;

    /// Degree of `v` (alive neighbors only, for representations with vertex
    /// removal).
    fn neighbor_count(&self, v: u32) -> usize;

    /// True if `{u, v}` is an edge. Implementations route this through their
    /// bitset fast path when one side has a hub row.
    fn adjacent(&self, u: u32, v: u32) -> bool;

    /// Calls `f` for every neighbor of `v`, in increasing id order.
    fn for_each_neighbor(&self, v: u32, f: &mut dyn FnMut(u32));

    /// Appends `candidates ∩ Γ(v)` to `out`, preserving the order of
    /// `candidates`. Counted as one intersection in [`perf`].
    fn intersect_neighbors(&self, v: u32, candidates: &[u32], out: &mut Vec<u32>) {
        perf::count_intersections(1);
        out.extend(candidates.iter().copied().filter(|&u| self.adjacent(v, u)));
    }
}

/// A hub-indexed view of an immutable [`Graph`]: shared CSR plus bitset rows
/// for every vertex of degree ≥ the resolved threshold.
///
/// Build it **once per graph** (it is `O(|V| + Σ_{hubs} d)` and allocates up
/// to ~2× the CSR size) and share the [`Arc`] across sessions and jobs — the
/// service layer caches one per graph fingerprint, and the engine's vertex
/// table serves adjacency and edge queries straight from it.
#[derive(Clone, Debug)]
pub struct NeighborhoodIndex {
    graph: Arc<Graph>,
    /// Resolved hub threshold; `usize::MAX` when the spec was `Disabled`.
    threshold: usize,
    /// `rows[v]` is the dense neighbor row of `v` when `d(v) ≥ threshold`.
    rows: Vec<Option<VertexBitSet>>,
    hub_count: usize,
}

impl NeighborhoodIndex {
    /// Builds the index over `graph` per `spec`.
    pub fn build(graph: Arc<Graph>, spec: IndexSpec) -> Self {
        let n = graph.num_vertices();
        let threshold = match spec.resolve(n) {
            None => {
                return NeighborhoodIndex {
                    graph,
                    threshold: usize::MAX,
                    rows: Vec::new(),
                    hub_count: 0,
                }
            }
            Some(t) => t,
        };
        let mut rows: Vec<Option<VertexBitSet>> = vec![None; n];
        let mut hub_count = 0usize;
        for v in graph.vertices() {
            if graph.degree(v) >= threshold {
                let mut row = VertexBitSet::new(n);
                for &w in graph.neighbors(v) {
                    row.insert(w.raw());
                }
                rows[v.index()] = Some(row);
                hub_count += 1;
            }
        }
        NeighborhoodIndex {
            graph,
            threshold,
            rows,
            hub_count,
        }
    }

    /// The underlying shared graph.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The resolved hub degree threshold (`usize::MAX` when disabled).
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Number of vertices that received a bitset row.
    pub fn hub_count(&self) -> usize {
        self.hub_count
    }

    /// True if `v` has a bitset row.
    #[inline]
    pub fn is_hub(&self, v: VertexId) -> bool {
        self.rows.get(v.index()).is_some_and(|row| row.is_some())
    }

    /// The dense neighbor row of `v`, when it is a hub.
    #[inline]
    pub fn hub_row(&self, v: VertexId) -> Option<&VertexBitSet> {
        self.rows.get(v.index()).and_then(|row| row.as_ref())
    }

    /// True if `(u, v)` is an edge: `O(1)` when either endpoint is a hub,
    /// CSR binary search otherwise.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        perf::count_edge_queries(1);
        if let Some(row) = self.hub_row(u) {
            perf::count_bitset_hits(1);
            return row.contains(v.raw());
        }
        if let Some(row) = self.hub_row(v) {
            perf::count_bitset_hits(1);
            return row.contains(u.raw());
        }
        self.graph.has_edge_csr(u, v)
    }

    /// Number of common neighbors of `u` and `v`: word-parallel AND when both
    /// are hubs, hybrid probe otherwise.
    pub fn common_neighbor_count(&self, u: VertexId, v: VertexId) -> usize {
        perf::count_intersections(1);
        match (self.hub_row(u), self.hub_row(v)) {
            (Some(a), Some(b)) => a.intersection_count(b),
            (Some(a), None) => self
                .graph
                .neighbors(v)
                .iter()
                .filter(|w| a.contains(w.raw()))
                .count(),
            (None, Some(b)) => self
                .graph
                .neighbors(u)
                .iter()
                .filter(|w| b.contains(w.raw()))
                .count(),
            (None, None) => self.graph.common_neighbor_count(u, v),
        }
    }

    /// Heap footprint of the bitset rows in bytes (excludes the shared CSR).
    pub fn memory_bytes(&self) -> usize {
        self.rows.capacity() * std::mem::size_of::<Option<VertexBitSet>>()
            + self
                .rows
                .iter()
                .flatten()
                .map(VertexBitSet::memory_bytes)
                .sum::<usize>()
    }
}

impl Neighborhoods for NeighborhoodIndex {
    fn vertex_capacity(&self) -> usize {
        self.graph.num_vertices()
    }

    fn neighbor_count(&self, v: u32) -> usize {
        self.graph.degree(VertexId::new(v))
    }

    fn adjacent(&self, u: u32, v: u32) -> bool {
        self.has_edge(VertexId::new(u), VertexId::new(v))
    }

    fn for_each_neighbor(&self, v: u32, f: &mut dyn FnMut(u32)) {
        for &w in self.graph.neighbors(VertexId::new(v)) {
            f(w.raw());
        }
    }
}

impl Neighborhoods for Graph {
    fn vertex_capacity(&self) -> usize {
        self.num_vertices()
    }

    fn neighbor_count(&self, v: u32) -> usize {
        self.degree(VertexId::new(v))
    }

    fn adjacent(&self, u: u32, v: u32) -> bool {
        self.has_edge(VertexId::new(u), VertexId::new(v))
    }

    fn for_each_neighbor(&self, v: u32, f: &mut dyn FnMut(u32)) {
        for &w in self.neighbors(VertexId::new(v)) {
            f(w.raw());
        }
    }
}

/// Process-wide counters of the neighborhood kernels, read by the benchmark
/// suite (`BENCH_*.json`'s `edge_queries` / `bitset_hits` / `intersections`
/// columns) and the service metrics.
///
/// The counters are relaxed atomics: increments cost a few nanoseconds and
/// never synchronise, so they are left on unconditionally. Reset them with
/// [`perf::reset`] before a measured region and read them with
/// [`perf::snapshot`] after.
pub mod perf {
    use super::{AtomicU64, Ordering};
    use qcm_sync::atomic::AtomicUsize;

    /// Counter lanes per logical counter. Each thread hashes to one lane, so
    /// parallel miners bump different cache lines instead of ping-ponging a
    /// single one through every core; `snapshot` sums the lanes.
    const LANES: usize = 8;

    // One cache line per lane: no false sharing between lanes or counters.
    #[repr(align(64))]
    struct PaddedCounter(AtomicU64);

    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: PaddedCounter = PaddedCounter(AtomicU64::new(0));

    struct Striped([PaddedCounter; LANES]);

    impl Striped {
        fn add(&self, n: u64) {
            // ordering: Relaxed — striped statistics counter; lanes only need
            // atomicity, the cross-lane sum tolerates skew.
            self.0[lane()].0.fetch_add(n, Ordering::Relaxed);
        }

        fn sum(&self) -> u64 {
            self.0
                .iter()
                // ordering: Relaxed — monitoring sum over lanes; skew is acceptable.
                .map(|lane| lane.0.load(Ordering::Relaxed))
                .sum()
        }

        fn reset(&self) {
            for lane in &self.0 {
                // ordering: Relaxed — bench-harness reset; concurrent counting keeps
                // running (documented on `reset`).
                lane.0.store(0, Ordering::Relaxed);
            }
        }
    }

    static EDGE_QUERIES: Striped = Striped([ZERO; LANES]);
    static BITSET_HITS: Striped = Striped([ZERO; LANES]);
    static INTERSECTIONS: Striped = Striped([ZERO; LANES]);
    static ALLOCATIONS_AVOIDED: Striped = Striped([ZERO; LANES]);
    static SCRATCH_FRESH_ALLOCS: Striped = Striped([ZERO; LANES]);
    static STEALS: Striped = Striped([ZERO; LANES]);
    static STEAL_FAILURES: Striped = Striped([ZERO; LANES]);
    /// High-water mark of pooled scratch bytes — a gauge, not a counter, so
    /// it is a single `fetch_max` cell (updated only when a pool grows, which
    /// is rare by construction).
    static SCRATCH_BYTES_PEAK: AtomicU64 = AtomicU64::new(0);

    /// This thread's counter lane (assigned round-robin on first use).
    #[inline]
    fn lane() -> usize {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            // ordering: Relaxed — round-robin lane assignment only needs RMW
            // atomicity.
            static LANE: usize = NEXT.fetch_add(1, qcm_sync::atomic::Ordering::Relaxed) % LANES;
        }
        LANE.with(|lane| *lane)
    }

    /// A point-in-time copy of the counters.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct PerfSnapshot {
        /// `has_edge`-style membership probes across all representations.
        pub edge_queries: u64,
        /// Edge queries answered by a bitset row (`O(1)` fast path).
        pub bitset_hits: u64,
        /// Candidate-set / neighborhood intersections performed.
        pub intersections: u64,
        /// Scratch-frame requests served from a pool instead of the heap
        /// (each would have been a fresh allocation before the arena).
        pub allocations_avoided: u64,
        /// Scratch-frame requests that did hit the heap (pool growth and the
        /// fresh-allocation reference mode). In steady state this stays flat
        /// while `allocations_avoided` grows with every tree node.
        pub scratch_fresh_allocs: u64,
        /// High-water mark of bytes resident in scratch pools. A gauge: it
        /// only ever grows, so [`PerfSnapshot::since`] keeps the later value
        /// instead of differencing.
        pub scratch_bytes_peak: u64,
        /// Tasks moved between worker deques by the work-stealing pop path.
        pub steals: u64,
        /// Steal attempts that found every victim deque empty.
        pub steal_failures: u64,
    }

    impl PerfSnapshot {
        /// Publishes this snapshot into `registry` under the `qcm_graph_*`
        /// namespace — the graph layer's bridge into the unified registry.
        /// Idempotent: re-publishing overwrites the previous values.
        pub fn publish(&self, registry: &qcm_obs::Registry) {
            let counters: [(&'static str, &'static str, u64); 7] = [
                (
                    "qcm_graph_edge_queries_total",
                    "Edge-membership probes.",
                    self.edge_queries,
                ),
                (
                    "qcm_graph_bitset_hits_total",
                    "Edge queries served by a bitset row.",
                    self.bitset_hits,
                ),
                (
                    "qcm_graph_intersections_total",
                    "Neighborhood intersections performed.",
                    self.intersections,
                ),
                (
                    "qcm_graph_allocations_avoided_total",
                    "Scratch-frame requests served from a pool.",
                    self.allocations_avoided,
                ),
                (
                    "qcm_graph_scratch_fresh_allocs_total",
                    "Scratch-frame requests that hit the heap.",
                    self.scratch_fresh_allocs,
                ),
                (
                    "qcm_graph_steals_total",
                    "Tasks moved between worker deques.",
                    self.steals,
                ),
                (
                    "qcm_graph_steal_failures_total",
                    "Steal sweeps that found nothing.",
                    self.steal_failures,
                ),
            ];
            for (name, help, value) in counters {
                registry.counter(name, help).set_total(value);
            }
            registry
                .gauge(
                    "qcm_graph_scratch_bytes_peak",
                    "High-water mark of pooled scratch bytes.",
                )
                .set(self.scratch_bytes_peak as f64);
        }

        /// Counter deltas `self − earlier` (saturating, for reset races).
        /// `scratch_bytes_peak` is a gauge and keeps the later value.
        pub fn since(&self, earlier: &PerfSnapshot) -> PerfSnapshot {
            PerfSnapshot {
                edge_queries: self.edge_queries.saturating_sub(earlier.edge_queries),
                bitset_hits: self.bitset_hits.saturating_sub(earlier.bitset_hits),
                intersections: self.intersections.saturating_sub(earlier.intersections),
                allocations_avoided: self
                    .allocations_avoided
                    .saturating_sub(earlier.allocations_avoided),
                scratch_fresh_allocs: self
                    .scratch_fresh_allocs
                    .saturating_sub(earlier.scratch_fresh_allocs),
                scratch_bytes_peak: self.scratch_bytes_peak,
                steals: self.steals.saturating_sub(earlier.steals),
                steal_failures: self.steal_failures.saturating_sub(earlier.steal_failures),
            }
        }
    }

    /// Adds `n` edge queries.
    #[inline]
    pub fn count_edge_queries(n: u64) {
        EDGE_QUERIES.add(n);
    }

    /// Adds `n` bitset fast-path hits.
    #[inline]
    pub fn count_bitset_hits(n: u64) {
        BITSET_HITS.add(n);
    }

    /// Adds `n` intersections.
    #[inline]
    pub fn count_intersections(n: u64) {
        INTERSECTIONS.add(n);
    }

    /// Adds `n` pool-served scratch-frame requests.
    #[inline]
    pub fn count_allocations_avoided(n: u64) {
        ALLOCATIONS_AVOIDED.add(n);
    }

    /// Adds `n` heap-served scratch-frame requests.
    #[inline]
    pub fn count_scratch_fresh_allocs(n: u64) {
        SCRATCH_FRESH_ALLOCS.add(n);
    }

    /// Raises the pooled-scratch-bytes high-water mark to at least `bytes`.
    #[inline]
    pub fn record_scratch_bytes(bytes: u64) {
        // ordering: Relaxed — high-water gauge; monotonic within a pass.
        SCRATCH_BYTES_PEAK.fetch_max(bytes, Ordering::Relaxed);
    }

    /// Adds `n` stolen tasks.
    #[inline]
    pub fn count_steals(n: u64) {
        STEALS.add(n);
    }

    /// Adds `n` failed steal sweeps.
    #[inline]
    pub fn count_steal_failures(n: u64) {
        STEAL_FAILURES.add(n);
    }

    /// Reads all counters (sum over lanes).
    pub fn snapshot() -> PerfSnapshot {
        PerfSnapshot {
            edge_queries: EDGE_QUERIES.sum(),
            bitset_hits: BITSET_HITS.sum(),
            intersections: INTERSECTIONS.sum(),
            allocations_avoided: ALLOCATIONS_AVOIDED.sum(),
            scratch_fresh_allocs: SCRATCH_FRESH_ALLOCS.sum(),
            // ordering: Relaxed — monitoring snapshot, skew tolerated.
            scratch_bytes_peak: SCRATCH_BYTES_PEAK.load(Ordering::Relaxed),
            steals: STEALS.sum(),
            steal_failures: STEAL_FAILURES.sum(),
        }
    }

    /// Zeroes all counters (benchmark harness only — concurrent miners will
    /// keep counting).
    pub fn reset() {
        EDGE_QUERIES.reset();
        BITSET_HITS.reset();
        INTERSECTIONS.reset();
        ALLOCATIONS_AVOIDED.reset();
        SCRATCH_FRESH_ALLOCS.reset();
        STEALS.reset();
        STEAL_FAILURES.reset();
        // ordering: Relaxed — bench-harness reset, serialised by the caller.
        SCRATCH_BYTES_PEAK.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure4() -> Arc<Graph> {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5),
            (5, 6),
            (2, 6),
            (3, 7),
            (7, 8),
            (3, 8),
        ];
        Arc::new(Graph::from_edges(9, edges.iter().copied()).unwrap())
    }

    #[test]
    fn auto_threshold_has_floor_and_scales() {
        assert_eq!(auto_threshold(0), 16);
        assert_eq!(auto_threshold(1_000), 16);
        assert_eq!(auto_threshold(6_400), 100);
        assert_eq!(IndexSpec::Auto.resolve(6_400), Some(100));
        assert_eq!(IndexSpec::Disabled.resolve(6_400), None);
        assert_eq!(IndexSpec::Threshold(3).resolve(6_400), Some(3));
    }

    #[test]
    fn index_agrees_with_csr_on_every_pair() {
        let g = figure4();
        for spec in [
            IndexSpec::Disabled,
            IndexSpec::Auto,
            IndexSpec::Threshold(0),
            IndexSpec::Threshold(3),
            IndexSpec::Threshold(100),
        ] {
            let idx = NeighborhoodIndex::build(g.clone(), spec);
            for u in g.vertices() {
                for v in g.vertices() {
                    assert_eq!(
                        idx.has_edge(u, v),
                        g.has_edge(u, v),
                        "spec {spec:?}, pair ({u}, {v})"
                    );
                    assert_eq!(
                        idx.common_neighbor_count(u, v),
                        g.common_neighbor_count(u, v),
                        "spec {spec:?}, pair ({u}, {v})"
                    );
                }
            }
        }
    }

    #[test]
    fn threshold_splits_hubs_from_the_rest() {
        let g = figure4();
        // Degrees: a=4 b=4 c=5 d=5 e=4 f=2 g=2 h=2 i=2.
        let idx = NeighborhoodIndex::build(g.clone(), IndexSpec::Threshold(4));
        assert_eq!(idx.hub_count(), 5);
        assert!(idx.is_hub(VertexId::new(0)));
        assert!(!idx.is_hub(VertexId::new(5)));
        assert!(idx.memory_bytes() > 0);
        assert_eq!(idx.threshold(), 4);

        let disabled = NeighborhoodIndex::build(g, IndexSpec::Disabled);
        assert_eq!(disabled.hub_count(), 0);
        assert_eq!(disabled.threshold(), usize::MAX);
        assert!(disabled.has_edge(VertexId::new(0), VertexId::new(1)));
    }

    #[test]
    fn neighborhoods_trait_is_uniform_across_representations() {
        let g = figure4();
        let idx = NeighborhoodIndex::build(g.clone(), IndexSpec::Threshold(0));
        let reps: [&dyn Neighborhoods; 2] = [g.as_ref(), &idx];
        for rep in reps {
            assert_eq!(rep.vertex_capacity(), 9);
            assert_eq!(rep.neighbor_count(3), 5);
            assert!(rep.adjacent(0, 4));
            assert!(!rep.adjacent(0, 8));
            let mut seen = Vec::new();
            rep.for_each_neighbor(3, &mut |w| seen.push(w));
            assert_eq!(seen, vec![0, 2, 4, 7, 8]);
            let mut out = Vec::new();
            rep.intersect_neighbors(3, &[1, 2, 4, 6, 8], &mut out);
            assert_eq!(out, vec![2, 4, 8]);
        }
    }

    #[test]
    fn perf_counters_accumulate_and_reset() {
        let g = figure4();
        let idx = NeighborhoodIndex::build(g, IndexSpec::Threshold(0));
        let before = perf::snapshot();
        idx.has_edge(VertexId::new(0), VertexId::new(1));
        idx.common_neighbor_count(VertexId::new(0), VertexId::new(2));
        let delta = perf::snapshot().since(&before);
        assert!(delta.edge_queries >= 1);
        assert!(delta.bitset_hits >= 1);
        assert!(delta.intersections >= 1);
    }
}
