//! Induced subgraphs and the task-local graph representation.
//!
//! Mining tasks in the paper carry a *materialised subgraph* `t.g` — the
//! k-core of the spawning vertex's two-hop neighborhood, or an induced
//! subgraph of a parent task's graph after decomposition. [`LocalGraph`] is
//! that representation: a small adjacency-list graph over a *local* index
//! space (`0..n_local`) plus a mapping back to the global [`VertexId`]s, so
//! that result sets can be reported in terms of the original graph.

use crate::bitset::VertexBitSet;
use crate::graph::Graph;
use crate::neighborhoods::{perf, IndexSpec, Neighborhoods};
use crate::vertex::VertexId;

/// Local index of every kept global id, or `u32::MAX` for dropped ones — the
/// `O(|V|)` rank array that replaces per-edge binary searches during subgraph
/// induction.
fn rank_table(universe: usize, kept: &[VertexId]) -> Vec<u32> {
    let mut rank = vec![u32::MAX; universe];
    for (local, &v) in kept.iter().enumerate() {
        rank[v.index()] = local as u32;
    }
    rank
}

/// Returns the subgraph of `g` induced by `vertices` together with the
/// local→global id mapping.
///
/// `vertices` must be sorted by id and duplicate-free (callers in this crate
/// always satisfy this; the function debug-asserts it). Runs in
/// `O(|V| + Σ_{v∈vertices} d(v))` via a rank array.
pub fn induced_subgraph(g: &Graph, vertices: &[VertexId]) -> (Graph, Vec<VertexId>) {
    debug_assert!(vertices.windows(2).all(|w| w[0] < w[1]));
    let mapping: Vec<VertexId> = vertices.to_vec();
    let rank = rank_table(g.num_vertices(), &mapping);
    let n = mapping.len();
    let mut offsets = vec![0usize; n + 1];
    let mut neighbors: Vec<VertexId> = Vec::new();
    for (local, &v) in mapping.iter().enumerate() {
        for &w in g.neighbors(v) {
            let local_w = rank[w.index()];
            if local_w != u32::MAX {
                neighbors.push(VertexId::new(local_w));
            }
        }
        offsets[local + 1] = neighbors.len();
    }
    (Graph::from_csr(offsets, neighbors), mapping)
}

/// A small adjacency-list graph over a local index space, carried by mining
/// tasks.
///
/// Unlike [`Graph`], a `LocalGraph` supports *vertex removal* (needed by the
/// per-task k-core shrinking of Algorithms 6–7) and records the global id of
/// every local vertex.
///
/// A `LocalGraph` optionally carries a **hybrid hub index**
/// ([`LocalGraph::build_hub_index`]): a [`VertexBitSet`] row per high-degree
/// vertex, giving the mining kernels `O(1)` [`LocalGraph::has_edge`] on hubs
/// and word-parallel degree counting. The index is derived data — two local
/// graphs compare equal iff their structure (adjacency, global ids, alive
/// flags) matches, regardless of indexing.
#[derive(Clone, Debug)]
pub struct LocalGraph {
    /// `adj[i]` is the sorted list of local neighbor indices of local vertex `i`.
    adj: Vec<Vec<u32>>,
    /// `global[i]` is the global id of local vertex `i`.
    global: Vec<VertexId>,
    /// `alive[i]` is false if the vertex has been peeled away.
    alive: Vec<bool>,
    /// Number of alive vertices.
    alive_count: usize,
    /// `hub_rows[i]` is the dense neighbor row of local vertex `i` when its
    /// *raw* degree reached the hub threshold at index-build time. Rows keep
    /// bits of peeled neighbors (queries check `alive` separately, and edges
    /// are never removed — only vertices die), so removal needs no row
    /// maintenance. Empty when no index is built.
    hub_rows: Vec<Option<VertexBitSet>>,
    /// The resolved threshold the rows were built with (`None` = no index).
    hub_threshold: Option<usize>,
}

impl PartialEq for LocalGraph {
    fn eq(&self, other: &Self) -> bool {
        // The hub index is derived data and deliberately excluded.
        self.adj == other.adj
            && self.global == other.global
            && self.alive == other.alive
            && self.alive_count == other.alive_count
    }
}

impl Eq for LocalGraph {}

impl LocalGraph {
    /// Creates a local graph with the given global ids and no edges.
    pub fn new(global_ids: Vec<VertexId>) -> Self {
        let n = global_ids.len();
        LocalGraph {
            adj: vec![Vec::new(); n],
            global: global_ids,
            alive: vec![true; n],
            alive_count: n,
            hub_rows: Vec::new(),
            hub_threshold: None,
        }
    }

    /// Builds a `LocalGraph` as the subgraph of `g` induced by `vertices`
    /// (sorted, duplicate-free). `O(|V| + Σ d)` via a rank array.
    pub fn from_induced(g: &Graph, vertices: &[VertexId]) -> Self {
        debug_assert!(vertices.windows(2).all(|w| w[0] < w[1]));
        let rank = rank_table(g.num_vertices(), vertices);
        let mut lg = LocalGraph::new(vertices.to_vec());
        for (local, &v) in vertices.iter().enumerate() {
            let mut list: Vec<u32> = Vec::with_capacity(g.degree(v));
            for &w in g.neighbors(v) {
                let local_w = rank[w.index()];
                if local_w != u32::MAX {
                    list.push(local_w);
                }
            }
            lg.adj[local] = list;
        }
        lg
    }

    /// Builds a `LocalGraph` from another local graph restricted to the given
    /// *local* indices of the parent (sorted, duplicate-free). This is the
    /// subgraph-materialisation step of task decomposition (Algorithm 8
    /// line 19): the child task's graph is induced by `S' ∪ ext(S')`.
    ///
    /// The child carries no hub index — the mining driver decides whether the
    /// child is big enough to warrant one.
    pub fn induce_from_local(&self, keep: &[u32]) -> LocalGraph {
        debug_assert!(keep.windows(2).all(|w| w[0] < w[1]));
        let global: Vec<VertexId> = keep.iter().map(|&i| self.global[i as usize]).collect();
        let mut rank = vec![u32::MAX; self.adj.len()];
        for (new_idx, &old_idx) in keep.iter().enumerate() {
            rank[old_idx as usize] = new_idx as u32;
        }
        let mut child = LocalGraph::new(global);
        for (new_idx, &old_idx) in keep.iter().enumerate() {
            let mut list: Vec<u32> = Vec::new();
            for &w in &self.adj[old_idx as usize] {
                if !self.alive[w as usize] {
                    continue;
                }
                let new_w = rank[w as usize];
                if new_w != u32::MAX {
                    list.push(new_w);
                }
            }
            child.adj[new_idx] = list;
        }
        child
    }

    /// Builds the hybrid hub index: every vertex whose raw adjacency length
    /// reaches the threshold resolved from `spec` gets a dense
    /// [`VertexBitSet`] neighbor row, making [`LocalGraph::has_edge`] `O(1)`
    /// on hubs and letting the degree kernels count by word-parallel AND.
    ///
    /// Returns the resolved threshold (`None` when `spec` is
    /// [`IndexSpec::Disabled`], which also drops any existing index).
    /// Rebuilding replaces the previous index. Incremental mutation
    /// ([`LocalGraph::add_vertex`] / [`LocalGraph::add_edge`]) invalidates
    /// the index; vertex removal does not (rows keep dead neighbors and
    /// queries check liveness).
    pub fn build_hub_index(&mut self, spec: IndexSpec) -> Option<usize> {
        let n = self.adj.len();
        let threshold = match spec.resolve(n) {
            None => {
                self.hub_rows = Vec::new();
                self.hub_threshold = None;
                return None;
            }
            Some(t) => t,
        };
        let mut rows: Vec<Option<VertexBitSet>> = vec![None; n];
        for (i, list) in self.adj.iter().enumerate() {
            if list.len() >= threshold {
                let mut row = VertexBitSet::new(n);
                for &w in list {
                    row.insert(w);
                }
                rows[i] = Some(row);
            }
        }
        self.hub_rows = rows;
        self.hub_threshold = Some(threshold);
        Some(threshold)
    }

    /// The threshold the current hub index was built with (`None` = no
    /// index).
    #[inline]
    pub fn hub_threshold(&self) -> Option<usize> {
        self.hub_threshold
    }

    /// Number of vertices carrying a bitset row.
    pub fn hub_count(&self) -> usize {
        self.hub_rows.iter().flatten().count()
    }

    /// The dense neighbor row of local vertex `i`, when it is a hub. Bits may
    /// include peeled neighbors; callers intersecting with sets of known-alive
    /// vertices (the degree kernels) need no extra filtering.
    #[inline]
    pub fn hub_row(&self, i: u32) -> Option<&VertexBitSet> {
        self.hub_rows.get(i as usize).and_then(|r| r.as_ref())
    }

    /// Heap bytes of the hub index (0 when none is built).
    pub fn hub_index_memory_bytes(&self) -> usize {
        self.hub_rows.capacity() * std::mem::size_of::<Option<VertexBitSet>>()
            + self
                .hub_rows
                .iter()
                .flatten()
                .map(VertexBitSet::memory_bytes)
                .sum::<usize>()
    }

    /// Drops the hub index (used by mutating builders).
    fn invalidate_hub_index(&mut self) {
        if self.hub_threshold.is_some() {
            self.hub_rows = Vec::new();
            self.hub_threshold = None;
        }
    }

    /// Number of local vertices ever added (including removed ones).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.global.len()
    }

    /// Number of alive (not peeled) vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.alive_count
    }

    /// Number of edges between alive vertices.
    pub fn num_edges(&self) -> usize {
        let mut total = 0usize;
        for i in 0..self.adj.len() {
            if !self.alive[i] {
                continue;
            }
            total += self.adj[i]
                .iter()
                .filter(|&&w| self.alive[w as usize])
                .count();
        }
        total / 2
    }

    /// True if local vertex `i` is alive.
    #[inline]
    pub fn is_alive(&self, i: u32) -> bool {
        self.alive[i as usize]
    }

    /// Global id of local vertex `i`.
    #[inline]
    pub fn global_id(&self, i: u32) -> VertexId {
        self.global[i as usize]
    }

    /// Finds the local index of a global id, if present and alive.
    pub fn local_index(&self, v: VertexId) -> Option<u32> {
        // The global mapping is not necessarily sorted for incrementally built
        // graphs, so do a linear scan; task graphs are small.
        self.global
            .iter()
            .position(|&g| g == v)
            .filter(|&i| self.alive[i])
            .map(|i| i as u32)
    }

    /// Iterator over alive local vertex indices.
    pub fn vertices(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.adj.len() as u32).filter(move |&i| self.alive[i as usize])
    }

    /// Sorted adjacency list of local vertex `i` **including** removed
    /// neighbors; callers that care must filter with [`LocalGraph::is_alive`].
    #[inline]
    pub fn raw_neighbors(&self, i: u32) -> &[u32] {
        &self.adj[i as usize]
    }

    /// Alive neighbors of local vertex `i`.
    pub fn neighbors(&self, i: u32) -> impl Iterator<Item = u32> + '_ {
        self.adj[i as usize]
            .iter()
            .copied()
            .filter(move |&w| self.alive[w as usize])
    }

    /// Degree of local vertex `i` counting only alive neighbors.
    pub fn degree(&self, i: u32) -> usize {
        self.neighbors(i).count()
    }

    /// True if alive vertices `a` and `b` are adjacent.
    ///
    /// This is the shared edge-query path of the mining hot loop: `O(1)` via
    /// the bitset row when either endpoint is an indexed hub
    /// ([`LocalGraph::build_hub_index`]), `O(log d)` over the shorter
    /// adjacency list otherwise.
    #[inline]
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        if a == b || !self.alive[a as usize] || !self.alive[b as usize] {
            return false;
        }
        perf::count_edge_queries(1);
        if let Some(row) = self.hub_row(a) {
            perf::count_bitset_hits(1);
            // Both endpoints are alive (checked above), so a stale bit for a
            // peeled vertex can never be observed here.
            return row.contains(b);
        }
        if let Some(row) = self.hub_row(b) {
            perf::count_bitset_hits(1);
            return row.contains(a);
        }
        let (s, l) = if self.adj[a as usize].len() <= self.adj[b as usize].len() {
            (a, b)
        } else {
            (b, a)
        };
        self.adj[s as usize].binary_search(&l).is_ok()
    }

    /// Adds an undirected edge between local indices (used when constructing
    /// task subgraphs incrementally from pulled adjacency lists). Keeps the
    /// lists sorted.
    pub fn add_edge(&mut self, a: u32, b: u32) {
        if a == b {
            return;
        }
        debug_assert!((a as usize) < self.adj.len() && (b as usize) < self.adj.len());
        // Structural growth invalidates the derived hub index; builders call
        // `build_hub_index` once construction is done.
        self.invalidate_hub_index();
        if let Err(pos) = self.adj[a as usize].binary_search(&b) {
            self.adj[a as usize].insert(pos, b);
        }
        if let Err(pos) = self.adj[b as usize].binary_search(&a) {
            self.adj[b as usize].insert(pos, a);
        }
    }

    /// Appends a new local vertex with the given global id and returns its
    /// local index.
    pub fn add_vertex(&mut self, global: VertexId) -> u32 {
        self.invalidate_hub_index();
        let idx = self.adj.len() as u32;
        self.adj.push(Vec::new());
        self.global.push(global);
        self.alive.push(true);
        self.alive_count += 1;
        idx
    }

    /// Removes (peels) a vertex. Its edges become invisible to alive queries.
    pub fn remove_vertex(&mut self, i: u32) {
        if self.alive[i as usize] {
            self.alive[i as usize] = false;
            self.alive_count -= 1;
        }
    }

    /// Shrinks the graph to its k-core **in place** by peeling alive vertices
    /// of alive-degree `< k`. Returns the number of vertices removed.
    pub fn shrink_to_k_core(&mut self, k: usize) -> usize {
        if k == 0 {
            return 0;
        }
        let n = self.adj.len();
        let mut degree: Vec<usize> = (0..n as u32)
            .map(|i| {
                if self.alive[i as usize] {
                    self.degree(i)
                } else {
                    0
                }
            })
            .collect();
        let mut stack: Vec<u32> = (0..n as u32)
            .filter(|&i| self.alive[i as usize] && degree[i as usize] < k)
            .collect();
        let mut removed = 0usize;
        let mut dead_now = vec![false; n];
        for &v in &stack {
            dead_now[v as usize] = true;
        }
        while let Some(v) = stack.pop() {
            if !self.alive[v as usize] {
                continue;
            }
            self.remove_vertex(v);
            removed += 1;
            // Decrement neighbors.
            let nbrs: Vec<u32> = self.adj[v as usize].clone();
            for w in nbrs {
                let wi = w as usize;
                if self.alive[wi] && !dead_now[wi] {
                    degree[wi] = degree[wi].saturating_sub(1);
                    if degree[wi] < k {
                        dead_now[wi] = true;
                        stack.push(w);
                    }
                }
            }
        }
        removed
    }

    /// Compacts the graph: drops removed vertices and renumbers the alive ones
    /// to `0..alive_count`, returning the compacted graph. The relative order
    /// of global ids is preserved.
    pub fn compact(&self) -> LocalGraph {
        let keep: Vec<u32> = self.vertices().collect();
        // `induce_from_local` expects sorted local indices, which `vertices()`
        // yields by construction.
        self.induce_from_local(&keep)
    }

    /// Converts to an immutable [`Graph`] plus global-id mapping (compacting
    /// removed vertices away).
    pub fn to_graph(&self) -> (Graph, Vec<VertexId>) {
        let compacted = self.compact();
        let n = compacted.adj.len();
        let mut offsets = vec![0usize; n + 1];
        let mut neighbors = Vec::new();
        for i in 0..n {
            for &w in &compacted.adj[i] {
                neighbors.push(VertexId::new(w));
            }
            offsets[i + 1] = neighbors.len();
        }
        (Graph::from_csr(offsets, neighbors), compacted.global)
    }

    /// Approximate heap footprint in bytes (for the engine's memory metrics).
    pub fn memory_bytes(&self) -> usize {
        let adj_bytes: usize = self
            .adj
            .iter()
            .map(|l| l.len() * std::mem::size_of::<u32>())
            .sum();
        adj_bytes
            + self.global.len() * std::mem::size_of::<VertexId>()
            + self.alive.len()
            + self.adj.len() * std::mem::size_of::<Vec<u32>>()
            + self.hub_index_memory_bytes()
    }

    /// Global ids of all alive vertices, in local-index order.
    pub fn alive_global_ids(&self) -> Vec<VertexId> {
        self.vertices().map(|i| self.global_id(i)).collect()
    }
}

impl Neighborhoods for LocalGraph {
    fn vertex_capacity(&self) -> usize {
        self.capacity()
    }

    fn neighbor_count(&self, v: u32) -> usize {
        self.degree(v)
    }

    fn adjacent(&self, u: u32, v: u32) -> bool {
        self.has_edge(u, v)
    }

    fn for_each_neighbor(&self, v: u32, f: &mut dyn FnMut(u32)) {
        for w in self.neighbors(v) {
            f(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure4() -> Graph {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5),
            (5, 6),
            (2, 6),
            (3, 7),
            (7, 8),
            (3, 8),
        ];
        Graph::from_edges(9, edges.iter().copied()).unwrap()
    }

    #[test]
    fn induced_subgraph_of_figure4_red_set() {
        let g = figure4();
        // S = {a, b, c, d, e} = {0,1,2,3,4}.
        let vs: Vec<VertexId> = (0..5u32).map(VertexId::new).collect();
        let (sub, mapping) = induced_subgraph(&g, &vs);
        assert_eq!(sub.num_vertices(), 5);
        // The induced subgraph has 9 edges (all pairs except b-d).
        assert_eq!(sub.num_edges(), 9);
        assert_eq!(mapping.len(), 5);
        sub.validate().unwrap();
    }

    #[test]
    fn local_graph_from_induced_matches_graph() {
        let g = figure4();
        let vs: Vec<VertexId> = (0..5u32).map(VertexId::new).collect();
        let lg = LocalGraph::from_induced(&g, &vs);
        assert_eq!(lg.num_vertices(), 5);
        assert_eq!(lg.num_edges(), 9);
        assert!(lg.has_edge(0, 1));
        assert!(!lg.has_edge(1, 3)); // b-d not an edge
        assert_eq!(lg.global_id(4), VertexId::new(4));
    }

    #[test]
    fn local_graph_remove_and_degree() {
        let g = figure4();
        let vs: Vec<VertexId> = (0..5u32).map(VertexId::new).collect();
        let mut lg = LocalGraph::from_induced(&g, &vs);
        assert_eq!(lg.degree(0), 4);
        lg.remove_vertex(4); // remove e
        assert_eq!(lg.num_vertices(), 4);
        assert_eq!(lg.degree(0), 3);
        assert!(!lg.has_edge(0, 4));
        assert_eq!(lg.num_edges(), 5);
    }

    #[test]
    fn shrink_to_k_core_peels_cascade() {
        // Path 0-1-2-3 plus triangle 3-4-5.
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 3)]).unwrap();
        let vs: Vec<VertexId> = (0..6u32).map(VertexId::new).collect();
        let mut lg = LocalGraph::from_induced(&g, &vs);
        let removed = lg.shrink_to_k_core(2);
        assert_eq!(removed, 3); // 0, 1, 2 peel away
        assert_eq!(lg.num_vertices(), 3);
        let alive: Vec<u32> = lg.alive_global_ids().iter().map(|v| v.raw()).collect();
        assert_eq!(alive, vec![3, 4, 5]);
    }

    #[test]
    fn compact_renumbers_and_preserves_edges() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 3)]).unwrap();
        let vs: Vec<VertexId> = (0..6u32).map(VertexId::new).collect();
        let mut lg = LocalGraph::from_induced(&g, &vs);
        lg.shrink_to_k_core(2);
        let c = lg.compact();
        assert_eq!(c.capacity(), 3);
        assert_eq!(c.num_edges(), 3);
        let (as_graph, mapping) = lg.to_graph();
        assert_eq!(as_graph.num_vertices(), 3);
        assert_eq!(as_graph.num_edges(), 3);
        assert_eq!(
            mapping.iter().map(|v| v.raw()).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        as_graph.validate().unwrap();
    }

    #[test]
    fn induce_from_local_respects_alive_flags() {
        let g = figure4();
        let vs: Vec<VertexId> = (0..5u32).map(VertexId::new).collect();
        let mut lg = LocalGraph::from_induced(&g, &vs);
        lg.remove_vertex(2); // remove c
        let child = lg.induce_from_local(&[0, 1, 3, 4]);
        assert_eq!(child.capacity(), 4);
        // c's edges must be gone; a-b, a-d, a-e, b-e, d-e remain.
        assert_eq!(child.num_edges(), 5);
    }

    #[test]
    fn hub_index_agrees_with_binary_search_under_removal() {
        let g = figure4();
        let vs: Vec<VertexId> = g.vertices().collect();
        let plain = LocalGraph::from_induced(&g, &vs);
        for threshold in [0usize, 2, 4, 100] {
            let mut indexed = plain.clone();
            indexed.build_hub_index(IndexSpec::Threshold(threshold));
            assert_eq!(indexed.hub_threshold(), Some(threshold));
            assert_eq!(plain, indexed, "hub index must not affect equality");
            for a in 0..9u32 {
                for b in 0..9u32 {
                    assert_eq!(
                        indexed.has_edge(a, b),
                        plain.has_edge(a, b),
                        "threshold {threshold}, pair ({a}, {b})"
                    );
                }
            }
            // Peel a hub and a leaf: rows keep stale bits, queries must not.
            let mut peeled_plain = plain.clone();
            let mut peeled_indexed = indexed.clone();
            for v in [3u32, 6] {
                peeled_plain.remove_vertex(v);
                peeled_indexed.remove_vertex(v);
            }
            for a in 0..9u32 {
                for b in 0..9u32 {
                    assert_eq!(
                        peeled_indexed.has_edge(a, b),
                        peeled_plain.has_edge(a, b),
                        "post-removal threshold {threshold}, pair ({a}, {b})"
                    );
                }
            }
        }
    }

    #[test]
    fn hub_index_auto_and_disabled_and_invalidation() {
        let g = figure4();
        let vs: Vec<VertexId> = g.vertices().collect();
        let mut lg = LocalGraph::from_induced(&g, &vs);
        assert_eq!(lg.hub_threshold(), None);
        assert_eq!(lg.hub_index_memory_bytes(), 0);
        lg.build_hub_index(IndexSpec::Threshold(4));
        assert_eq!(lg.hub_count(), 5); // c, d have degree 5; a, b, e have 4
        assert!(lg.hub_index_memory_bytes() > 0);
        assert!(lg.hub_row(3).is_some());
        assert!(lg.hub_row(5).is_none());
        // Disabled drops the index.
        lg.build_hub_index(IndexSpec::Disabled);
        assert_eq!(lg.hub_threshold(), None);
        assert_eq!(lg.hub_count(), 0);
        // Structural growth invalidates a built index.
        lg.build_hub_index(IndexSpec::Threshold(0));
        assert!(lg.hub_threshold().is_some());
        let i = lg.add_vertex(VertexId::new(99));
        assert_eq!(lg.hub_threshold(), None);
        lg.build_hub_index(IndexSpec::Threshold(0));
        lg.add_edge(0, i);
        assert_eq!(lg.hub_threshold(), None);
        assert!(lg.has_edge(0, i));
    }

    #[test]
    fn add_vertex_and_add_edge_incremental_build() {
        let mut lg = LocalGraph::new(vec![]);
        let a = lg.add_vertex(VertexId::new(100));
        let b = lg.add_vertex(VertexId::new(200));
        let c = lg.add_vertex(VertexId::new(300));
        lg.add_edge(a, b);
        lg.add_edge(b, c);
        lg.add_edge(b, c); // duplicate ignored
        assert_eq!(lg.num_vertices(), 3);
        assert_eq!(lg.num_edges(), 2);
        assert_eq!(lg.local_index(VertexId::new(200)), Some(b));
        assert_eq!(lg.local_index(VertexId::new(999)), None);
        assert!(lg.memory_bytes() > 0);
    }
}
