//! Induced subgraphs and the task-local graph representation.
//!
//! Mining tasks in the paper carry a *materialised subgraph* `t.g` — the
//! k-core of the spawning vertex's two-hop neighborhood, or an induced
//! subgraph of a parent task's graph after decomposition. [`LocalGraph`] is
//! that representation: a small adjacency-list graph over a *local* index
//! space (`0..n_local`) plus a mapping back to the global [`VertexId`]s, so
//! that result sets can be reported in terms of the original graph.

use crate::graph::Graph;
use crate::vertex::VertexId;

/// Returns the subgraph of `g` induced by `vertices` together with the
/// local→global id mapping.
///
/// `vertices` must be sorted by id and duplicate-free (callers in this crate
/// always satisfy this; the function debug-asserts it). Runs in
/// `O(Σ_{v∈vertices} d(v) · log |vertices|)`.
pub fn induced_subgraph(g: &Graph, vertices: &[VertexId]) -> (Graph, Vec<VertexId>) {
    debug_assert!(vertices.windows(2).all(|w| w[0] < w[1]));
    let mapping: Vec<VertexId> = vertices.to_vec();
    let n = mapping.len();
    let mut offsets = vec![0usize; n + 1];
    let mut neighbors: Vec<VertexId> = Vec::new();
    for (local, &v) in mapping.iter().enumerate() {
        for &w in g.neighbors(v) {
            if let Ok(local_w) = mapping.binary_search(&w) {
                neighbors.push(VertexId::from(local_w));
            }
        }
        offsets[local + 1] = neighbors.len();
    }
    (Graph::from_csr(offsets, neighbors), mapping)
}

/// A small adjacency-list graph over a local index space, carried by mining
/// tasks.
///
/// Unlike [`Graph`], a `LocalGraph` supports *vertex removal* (needed by the
/// per-task k-core shrinking of Algorithms 6–7) and records the global id of
/// every local vertex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalGraph {
    /// `adj[i]` is the sorted list of local neighbor indices of local vertex `i`.
    adj: Vec<Vec<u32>>,
    /// `global[i]` is the global id of local vertex `i`.
    global: Vec<VertexId>,
    /// `alive[i]` is false if the vertex has been peeled away.
    alive: Vec<bool>,
    /// Number of alive vertices.
    alive_count: usize,
}

impl LocalGraph {
    /// Creates a local graph with the given global ids and no edges.
    pub fn new(global_ids: Vec<VertexId>) -> Self {
        let n = global_ids.len();
        LocalGraph {
            adj: vec![Vec::new(); n],
            global: global_ids,
            alive: vec![true; n],
            alive_count: n,
        }
    }

    /// Builds a `LocalGraph` as the subgraph of `g` induced by `vertices`
    /// (sorted, duplicate-free).
    pub fn from_induced(g: &Graph, vertices: &[VertexId]) -> Self {
        debug_assert!(vertices.windows(2).all(|w| w[0] < w[1]));
        let mut lg = LocalGraph::new(vertices.to_vec());
        for (local, &v) in vertices.iter().enumerate() {
            let mut list: Vec<u32> = Vec::new();
            for &w in g.neighbors(v) {
                if let Ok(local_w) = vertices.binary_search(&w) {
                    list.push(local_w as u32);
                }
            }
            lg.adj[local] = list;
        }
        lg
    }

    /// Builds a `LocalGraph` from another local graph restricted to the given
    /// *local* indices of the parent (sorted, duplicate-free). This is the
    /// subgraph-materialisation step of task decomposition (Algorithm 8
    /// line 19): the child task's graph is induced by `S' ∪ ext(S')`.
    pub fn induce_from_local(&self, keep: &[u32]) -> LocalGraph {
        debug_assert!(keep.windows(2).all(|w| w[0] < w[1]));
        let global: Vec<VertexId> = keep.iter().map(|&i| self.global[i as usize]).collect();
        let mut child = LocalGraph::new(global);
        for (new_idx, &old_idx) in keep.iter().enumerate() {
            let mut list: Vec<u32> = Vec::new();
            for &w in &self.adj[old_idx as usize] {
                if !self.alive[w as usize] {
                    continue;
                }
                if let Ok(new_w) = keep.binary_search(&w) {
                    list.push(new_w as u32);
                }
            }
            child.adj[new_idx] = list;
        }
        child
    }

    /// Number of local vertices ever added (including removed ones).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.global.len()
    }

    /// Number of alive (not peeled) vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.alive_count
    }

    /// Number of edges between alive vertices.
    pub fn num_edges(&self) -> usize {
        let mut total = 0usize;
        for i in 0..self.adj.len() {
            if !self.alive[i] {
                continue;
            }
            total += self.adj[i]
                .iter()
                .filter(|&&w| self.alive[w as usize])
                .count();
        }
        total / 2
    }

    /// True if local vertex `i` is alive.
    #[inline]
    pub fn is_alive(&self, i: u32) -> bool {
        self.alive[i as usize]
    }

    /// Global id of local vertex `i`.
    #[inline]
    pub fn global_id(&self, i: u32) -> VertexId {
        self.global[i as usize]
    }

    /// Finds the local index of a global id, if present and alive.
    pub fn local_index(&self, v: VertexId) -> Option<u32> {
        // The global mapping is not necessarily sorted for incrementally built
        // graphs, so do a linear scan; task graphs are small.
        self.global
            .iter()
            .position(|&g| g == v)
            .filter(|&i| self.alive[i])
            .map(|i| i as u32)
    }

    /// Iterator over alive local vertex indices.
    pub fn vertices(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.adj.len() as u32).filter(move |&i| self.alive[i as usize])
    }

    /// Sorted adjacency list of local vertex `i` **including** removed
    /// neighbors; callers that care must filter with [`LocalGraph::is_alive`].
    #[inline]
    pub fn raw_neighbors(&self, i: u32) -> &[u32] {
        &self.adj[i as usize]
    }

    /// Alive neighbors of local vertex `i`.
    pub fn neighbors(&self, i: u32) -> impl Iterator<Item = u32> + '_ {
        self.adj[i as usize]
            .iter()
            .copied()
            .filter(move |&w| self.alive[w as usize])
    }

    /// Degree of local vertex `i` counting only alive neighbors.
    pub fn degree(&self, i: u32) -> usize {
        self.neighbors(i).count()
    }

    /// True if alive vertices `a` and `b` are adjacent.
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        if a == b || !self.alive[a as usize] || !self.alive[b as usize] {
            return false;
        }
        let (s, l) = if self.adj[a as usize].len() <= self.adj[b as usize].len() {
            (a, b)
        } else {
            (b, a)
        };
        self.adj[s as usize].binary_search(&l).is_ok()
    }

    /// Adds an undirected edge between local indices (used when constructing
    /// task subgraphs incrementally from pulled adjacency lists). Keeps the
    /// lists sorted.
    pub fn add_edge(&mut self, a: u32, b: u32) {
        if a == b {
            return;
        }
        debug_assert!((a as usize) < self.adj.len() && (b as usize) < self.adj.len());
        if let Err(pos) = self.adj[a as usize].binary_search(&b) {
            self.adj[a as usize].insert(pos, b);
        }
        if let Err(pos) = self.adj[b as usize].binary_search(&a) {
            self.adj[b as usize].insert(pos, a);
        }
    }

    /// Appends a new local vertex with the given global id and returns its
    /// local index.
    pub fn add_vertex(&mut self, global: VertexId) -> u32 {
        let idx = self.adj.len() as u32;
        self.adj.push(Vec::new());
        self.global.push(global);
        self.alive.push(true);
        self.alive_count += 1;
        idx
    }

    /// Removes (peels) a vertex. Its edges become invisible to alive queries.
    pub fn remove_vertex(&mut self, i: u32) {
        if self.alive[i as usize] {
            self.alive[i as usize] = false;
            self.alive_count -= 1;
        }
    }

    /// Shrinks the graph to its k-core **in place** by peeling alive vertices
    /// of alive-degree `< k`. Returns the number of vertices removed.
    pub fn shrink_to_k_core(&mut self, k: usize) -> usize {
        if k == 0 {
            return 0;
        }
        let n = self.adj.len();
        let mut degree: Vec<usize> = (0..n as u32)
            .map(|i| {
                if self.alive[i as usize] {
                    self.degree(i)
                } else {
                    0
                }
            })
            .collect();
        let mut stack: Vec<u32> = (0..n as u32)
            .filter(|&i| self.alive[i as usize] && degree[i as usize] < k)
            .collect();
        let mut removed = 0usize;
        let mut dead_now = vec![false; n];
        for &v in &stack {
            dead_now[v as usize] = true;
        }
        while let Some(v) = stack.pop() {
            if !self.alive[v as usize] {
                continue;
            }
            self.remove_vertex(v);
            removed += 1;
            // Decrement neighbors.
            let nbrs: Vec<u32> = self.adj[v as usize].clone();
            for w in nbrs {
                let wi = w as usize;
                if self.alive[wi] && !dead_now[wi] {
                    degree[wi] = degree[wi].saturating_sub(1);
                    if degree[wi] < k {
                        dead_now[wi] = true;
                        stack.push(w);
                    }
                }
            }
        }
        removed
    }

    /// Compacts the graph: drops removed vertices and renumbers the alive ones
    /// to `0..alive_count`, returning the compacted graph. The relative order
    /// of global ids is preserved.
    pub fn compact(&self) -> LocalGraph {
        let keep: Vec<u32> = self.vertices().collect();
        // `induce_from_local` expects sorted local indices, which `vertices()`
        // yields by construction.
        self.induce_from_local(&keep)
    }

    /// Converts to an immutable [`Graph`] plus global-id mapping (compacting
    /// removed vertices away).
    pub fn to_graph(&self) -> (Graph, Vec<VertexId>) {
        let compacted = self.compact();
        let n = compacted.adj.len();
        let mut offsets = vec![0usize; n + 1];
        let mut neighbors = Vec::new();
        for i in 0..n {
            for &w in &compacted.adj[i] {
                neighbors.push(VertexId::new(w));
            }
            offsets[i + 1] = neighbors.len();
        }
        (Graph::from_csr(offsets, neighbors), compacted.global)
    }

    /// Approximate heap footprint in bytes (for the engine's memory metrics).
    pub fn memory_bytes(&self) -> usize {
        let adj_bytes: usize = self
            .adj
            .iter()
            .map(|l| l.len() * std::mem::size_of::<u32>())
            .sum();
        adj_bytes
            + self.global.len() * std::mem::size_of::<VertexId>()
            + self.alive.len()
            + self.adj.len() * std::mem::size_of::<Vec<u32>>()
    }

    /// Global ids of all alive vertices, in local-index order.
    pub fn alive_global_ids(&self) -> Vec<VertexId> {
        self.vertices().map(|i| self.global_id(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure4() -> Graph {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5),
            (5, 6),
            (2, 6),
            (3, 7),
            (7, 8),
            (3, 8),
        ];
        Graph::from_edges(9, edges.iter().copied()).unwrap()
    }

    #[test]
    fn induced_subgraph_of_figure4_red_set() {
        let g = figure4();
        // S = {a, b, c, d, e} = {0,1,2,3,4}.
        let vs: Vec<VertexId> = (0..5u32).map(VertexId::new).collect();
        let (sub, mapping) = induced_subgraph(&g, &vs);
        assert_eq!(sub.num_vertices(), 5);
        // The induced subgraph has 9 edges (all pairs except b-d).
        assert_eq!(sub.num_edges(), 9);
        assert_eq!(mapping.len(), 5);
        sub.validate().unwrap();
    }

    #[test]
    fn local_graph_from_induced_matches_graph() {
        let g = figure4();
        let vs: Vec<VertexId> = (0..5u32).map(VertexId::new).collect();
        let lg = LocalGraph::from_induced(&g, &vs);
        assert_eq!(lg.num_vertices(), 5);
        assert_eq!(lg.num_edges(), 9);
        assert!(lg.has_edge(0, 1));
        assert!(!lg.has_edge(1, 3)); // b-d not an edge
        assert_eq!(lg.global_id(4), VertexId::new(4));
    }

    #[test]
    fn local_graph_remove_and_degree() {
        let g = figure4();
        let vs: Vec<VertexId> = (0..5u32).map(VertexId::new).collect();
        let mut lg = LocalGraph::from_induced(&g, &vs);
        assert_eq!(lg.degree(0), 4);
        lg.remove_vertex(4); // remove e
        assert_eq!(lg.num_vertices(), 4);
        assert_eq!(lg.degree(0), 3);
        assert!(!lg.has_edge(0, 4));
        assert_eq!(lg.num_edges(), 5);
    }

    #[test]
    fn shrink_to_k_core_peels_cascade() {
        // Path 0-1-2-3 plus triangle 3-4-5.
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 3)]).unwrap();
        let vs: Vec<VertexId> = (0..6u32).map(VertexId::new).collect();
        let mut lg = LocalGraph::from_induced(&g, &vs);
        let removed = lg.shrink_to_k_core(2);
        assert_eq!(removed, 3); // 0, 1, 2 peel away
        assert_eq!(lg.num_vertices(), 3);
        let alive: Vec<u32> = lg.alive_global_ids().iter().map(|v| v.raw()).collect();
        assert_eq!(alive, vec![3, 4, 5]);
    }

    #[test]
    fn compact_renumbers_and_preserves_edges() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 3)]).unwrap();
        let vs: Vec<VertexId> = (0..6u32).map(VertexId::new).collect();
        let mut lg = LocalGraph::from_induced(&g, &vs);
        lg.shrink_to_k_core(2);
        let c = lg.compact();
        assert_eq!(c.capacity(), 3);
        assert_eq!(c.num_edges(), 3);
        let (as_graph, mapping) = lg.to_graph();
        assert_eq!(as_graph.num_vertices(), 3);
        assert_eq!(as_graph.num_edges(), 3);
        assert_eq!(
            mapping.iter().map(|v| v.raw()).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        as_graph.validate().unwrap();
    }

    #[test]
    fn induce_from_local_respects_alive_flags() {
        let g = figure4();
        let vs: Vec<VertexId> = (0..5u32).map(VertexId::new).collect();
        let mut lg = LocalGraph::from_induced(&g, &vs);
        lg.remove_vertex(2); // remove c
        let child = lg.induce_from_local(&[0, 1, 3, 4]);
        assert_eq!(child.capacity(), 4);
        // c's edges must be gone; a-b, a-d, a-e, b-e, d-e remain.
        assert_eq!(child.num_edges(), 5);
    }

    #[test]
    fn add_vertex_and_add_edge_incremental_build() {
        let mut lg = LocalGraph::new(vec![]);
        let a = lg.add_vertex(VertexId::new(100));
        let b = lg.add_vertex(VertexId::new(200));
        let c = lg.add_vertex(VertexId::new(300));
        lg.add_edge(a, b);
        lg.add_edge(b, c);
        lg.add_edge(b, c); // duplicate ignored
        assert_eq!(lg.num_vertices(), 3);
        assert_eq!(lg.num_edges(), 2);
        assert_eq!(lg.local_index(VertexId::new(200)), Some(b));
        assert_eq!(lg.local_index(VertexId::new(999)), None);
        assert!(lg.memory_bytes() > 0);
    }
}
