//! Error types for graph construction and I/O.

use std::fmt;
use std::io;

/// Errors produced by the graph substrate.
#[derive(Debug)]
pub enum GraphError {
    /// A vertex id referenced an index outside of the graph.
    VertexOutOfRange {
        /// The offending vertex id (raw value).
        vertex: u32,
        /// Number of vertices in the graph.
        num_vertices: usize,
    },
    /// An edge list line could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The graph exceeded the 32-bit vertex id space.
    TooManyVertices(usize),
    /// A binary snapshot failed structural validation (unsupported version,
    /// checksum mismatch, inconsistent header counts).
    Format {
        /// Description of the problem.
        message: String,
    },
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex id {vertex} is out of range for a graph with {num_vertices} vertices"
            ),
            GraphError::Parse { line, message } => {
                write!(f, "failed to parse edge list at line {line}: {message}")
            }
            GraphError::TooManyVertices(n) => {
                write!(f, "graph has {n} vertices which exceeds the u32 id space")
            }
            GraphError::Format { message } => {
                write!(f, "invalid binary graph snapshot: {message}")
            }
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 10,
            num_vertices: 5,
        };
        assert!(format!("{e}").contains("out of range"));

        let e = GraphError::Parse {
            line: 3,
            message: "bad token".to_string(),
        };
        assert!(format!("{e}").contains("line 3"));

        let e = GraphError::TooManyVertices(5_000_000_000);
        assert!(format!("{e}").contains("u32"));

        let e = GraphError::Format {
            message: "checksum mismatch".to_string(),
        };
        assert!(format!("{e}").contains("checksum mismatch"));

        let e = GraphError::Io(io::Error::new(io::ErrorKind::NotFound, "missing"));
        assert!(format!("{e}").contains("I/O"));
    }

    #[test]
    fn io_error_conversion_preserves_source() {
        use std::error::Error;
        let e: GraphError = io::Error::other("boom").into();
        assert!(e.source().is_some());
    }
}
