//! The immutable CSR graph.
//!
//! [`Graph`] is the canonical in-memory representation used by the whole
//! project: a simple, undirected graph stored in compressed-sparse-row form
//! with each adjacency list sorted by vertex id. Sorted lists give
//! `O(log d)` edge queries (`has_edge`) and allow linear-time sorted-set
//! intersections, which the pruning rules of the miner (cover-vertex pruning,
//! diameter pruning) rely on heavily.

use crate::error::GraphError;
use crate::vertex::VertexId;
use crate::Result;

/// A simple undirected graph in CSR (compressed sparse row) form.
///
/// * Vertex ids are dense `0..num_vertices()`.
/// * Each adjacency list is sorted in increasing vertex-id order and contains
///   no duplicates or self loops.
/// * The structure is immutable after construction (build one with
///   [`crate::GraphBuilder`] or [`Graph::from_edges`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` is the slice of `neighbors` holding Γ(v).
    offsets: Vec<usize>,
    /// Concatenated, per-vertex-sorted adjacency lists.
    neighbors: Vec<VertexId>,
    /// Number of undirected edges (each edge counted once).
    num_edges: usize,
}

impl Graph {
    /// Creates an empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
            num_edges: 0,
        }
    }

    /// Builds a graph with `n` vertices from an iterator of undirected edges.
    ///
    /// Self loops and duplicate edges are silently dropped. Edges referencing
    /// vertices `>= n` produce an error.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut builder = crate::GraphBuilder::with_capacity(n, 0);
        for (a, b) in edges {
            if a as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: a,
                    num_vertices: n,
                });
            }
            if b as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: b,
                    num_vertices: n,
                });
            }
            builder.add_edge(VertexId::new(a), VertexId::new(b));
        }
        builder.set_min_vertices(n);
        Ok(builder.build())
    }

    /// Constructs a graph directly from pre-validated CSR arrays.
    ///
    /// This is used by the builder and the subgraph-induction code; callers
    /// must guarantee that the adjacency lists are sorted, deduplicated,
    /// symmetric and free of self loops.
    pub(crate) fn from_csr(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), neighbors.len());
        let num_edges = neighbors.len() / 2;
        Graph {
            offsets,
            neighbors,
            num_edges,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges (each counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Returns true if the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_vertices() == 0
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as u32).map(VertexId::new)
    }

    /// The sorted adjacency list Γ(v).
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let i = v.index();
        &self.neighbors[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Degree d(v) = |Γ(v)|.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let i = v.index();
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Returns true if `(u, v)` is an edge. `O(log d)` over the shorter
    /// adjacency list. This is the **shared edge-query path**: every
    /// membership probe in the crate (including [`Graph::validate`]) routes
    /// through here or through a [`crate::NeighborhoodIndex`] wrapping it, so
    /// the perf counters see each query exactly once and indexed callers get
    /// the bitset fast path everywhere.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        crate::neighborhoods::perf::count_edge_queries(1);
        self.has_edge_csr(u, v)
    }

    /// The raw CSR binary search behind [`Graph::has_edge`], uncounted — used
    /// by [`crate::NeighborhoodIndex`] (which already counted the query) as
    /// its non-hub fallback.
    #[inline]
    pub(crate) fn has_edge_csr(&self, u: VertexId, v: VertexId) -> bool {
        // Search the shorter adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adjacency_contains(a, b)
    }

    /// Directed membership primitive: true if `v` appears in Γ(u). This is
    /// the one place the crate binary-searches an adjacency slice for
    /// membership; [`Graph::has_edge`] and [`Graph::validate`] both build on
    /// it (`validate` needs the *directed* form — a symmetric query could
    /// answer from the other endpoint's list and mask an asymmetric CSR).
    #[inline]
    fn adjacency_contains(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all undirected edges, each reported once with
    /// `src < dst`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&w| u < w)
                .map(move |w| (u, w))
        })
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|i| self.offsets[i + 1] - self.offsets[i])
            .max()
            .unwrap_or(0)
    }

    /// Average degree (0.0 for an empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.num_vertices() as f64
        }
    }

    /// Number of common neighbors of `u` and `v` (sorted-merge intersection).
    pub fn common_neighbor_count(&self, u: VertexId, v: VertexId) -> usize {
        let mut count = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        let nu = self.neighbors(u);
        let nv = self.neighbors(v);
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// A stable 64-bit fingerprint of the graph's content.
    ///
    /// Hashes the vertex count and every CSR offset/neighbor with the
    /// release-stable FNV-1a hasher ([`crate::hash::Fnv1a64`]), so the same
    /// graph structure always produces the same value — across processes,
    /// platforms and releases. Two graphs compare [`PartialEq`]-equal exactly
    /// when their fingerprints are computed over identical arrays, which makes
    /// this the cache key of choice for anything memoising per-graph work
    /// (the service-layer result cache keys on it via `qcm-core`'s
    /// `QueryKey`).
    ///
    /// This is a hash of the *labelled* structure: isomorphic graphs with
    /// different vertex numberings hash differently. `O(|V| + |E|)`.
    pub fn content_hash(&self) -> u64 {
        let mut h = crate::hash::Fnv1a64::new();
        h.write_u64(self.num_vertices() as u64);
        for &off in &self.offsets {
            h.write_u64(off as u64);
        }
        for &v in &self.neighbors {
            h.write_u32(v.raw());
        }
        h.finish()
    }

    /// Approximate heap size of the CSR arrays in bytes. Used by the engine's
    /// memory accounting (the "RAM" column of Table 2).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<VertexId>()
    }

    /// Checks the internal CSR invariants. Intended for tests and debug
    /// assertions; `O(|V| + |E| log d)`.
    pub fn validate(&self) -> Result<()> {
        let n = self.num_vertices();
        for v in self.vertices() {
            let adj = self.neighbors(v);
            for w in adj.windows(2) {
                if w[0] >= w[1] {
                    return Err(GraphError::Parse {
                        line: 0,
                        message: format!("adjacency list of {v} is not strictly sorted"),
                    });
                }
            }
            for &w in adj {
                if w.index() >= n {
                    return Err(GraphError::VertexOutOfRange {
                        vertex: w.raw(),
                        num_vertices: n,
                    });
                }
                if w == v {
                    return Err(GraphError::Parse {
                        line: 0,
                        message: format!("self loop at {v}"),
                    });
                }
                // Shared directed-membership path (kept directed on purpose:
                // the symmetric `has_edge` probes the shorter list and would
                // mask an asymmetric CSR).
                if !self.adjacency_contains(w, v) {
                    return Err(GraphError::Parse {
                        line: 0,
                        message: format!("edge ({v},{w}) is not symmetric"),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 9-vertex illustrative graph of Figure 4 of the paper
    /// (a..i mapped to 0..8).
    pub(crate) fn figure4_graph() -> Graph {
        // a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5), // b-f
            (5, 6), // f-g
            (2, 6), // c-g
            (3, 7), // d-h
            (7, 8), // h-i
            (3, 8), // d-i
        ];
        Graph::from_edges(9, edges.iter().copied()).unwrap()
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert!(!g.is_empty());
        assert!(Graph::empty(0).is_empty());
    }

    #[test]
    fn from_edges_builds_symmetric_sorted_lists() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (3, 0)]).unwrap();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(
            g.neighbors(VertexId::new(0)),
            &[VertexId::new(1), VertexId::new(2), VertexId::new(3)]
        );
        assert_eq!(g.degree(VertexId::new(0)), 3);
        assert_eq!(g.degree(VertexId::new(3)), 1);
        g.validate().unwrap();
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        let err = Graph::from_edges(3, [(0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 5, .. }
        ));
    }

    #[test]
    fn duplicate_edges_and_loops_are_dropped() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1), (2, 2)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(VertexId::new(2)), 0);
    }

    #[test]
    fn has_edge_checks_both_directions() {
        let g = figure4_graph();
        assert!(g.has_edge(VertexId::new(0), VertexId::new(3)));
        assert!(g.has_edge(VertexId::new(3), VertexId::new(0)));
        assert!(!g.has_edge(VertexId::new(0), VertexId::new(8)));
        assert!(!g.has_edge(VertexId::new(4), VertexId::new(4)));
    }

    #[test]
    fn figure4_degrees_match_paper() {
        let g = figure4_graph();
        // Γ(d) = {a, c, e, h, i} so d(d) = 5 (paper, Section 3.1).
        assert_eq!(g.degree(VertexId::new(3)), 5);
        let nbrs: Vec<u32> = g
            .neighbors(VertexId::new(3))
            .iter()
            .map(|v| v.raw())
            .collect();
        assert_eq!(nbrs, vec![0, 2, 4, 7, 8]);
        // Γ(e) = {a, b, c, d}.
        assert_eq!(g.degree(VertexId::new(4)), 4);
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let g = figure4_graph();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.num_edges());
        for (u, v) in edges {
            assert!(u < v);
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn common_neighbors_counts_intersection() {
        let g = figure4_graph();
        // a and c share neighbors {b, d, e}.
        assert_eq!(
            g.common_neighbor_count(VertexId::new(0), VertexId::new(2)),
            3
        );
        // f and i share none.
        assert_eq!(
            g.common_neighbor_count(VertexId::new(5), VertexId::new(8)),
            0
        );
    }

    #[test]
    fn degree_statistics() {
        let g = figure4_graph();
        assert_eq!(g.max_degree(), 5);
        let expected_avg = 2.0 * g.num_edges() as f64 / 9.0;
        assert!((g.avg_degree() - expected_avg).abs() < 1e-12);
    }

    #[test]
    fn memory_bytes_is_nonzero_for_nonempty_graph() {
        let g = figure4_graph();
        assert!(g.memory_bytes() > 0);
    }

    #[test]
    fn content_hash_is_stable_and_content_sensitive() {
        let g = figure4_graph();
        // Deterministic across calls and across an equal reconstruction.
        assert_eq!(g.content_hash(), g.content_hash());
        assert_eq!(g.content_hash(), figure4_graph().content_hash());
        // Edge-order of construction does not matter (CSR is canonical).
        let a = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let b = Graph::from_edges(3, [(1, 2), (0, 1)]).unwrap();
        assert_eq!(a.content_hash(), b.content_hash());
        // Any structural change changes the hash.
        let c = Graph::from_edges(3, [(0, 1), (0, 2)]).unwrap();
        assert_ne!(a.content_hash(), c.content_hash());
        let d = Graph::from_edges(4, [(0, 1), (1, 2)]).unwrap();
        assert_ne!(a.content_hash(), d.content_hash());
        assert_ne!(
            Graph::empty(0).content_hash(),
            Graph::empty(1).content_hash()
        );
    }
}
