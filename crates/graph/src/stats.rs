//! Graph summary statistics.
//!
//! The experiment harness uses these statistics to print Table 1 of the paper
//! (dataset sizes) and to characterise the synthetic stand-in datasets
//! (degree skew, core structure) so that EXPERIMENTS.md can document how close
//! each stand-in is to its real counterpart.

use crate::graph::Graph;
use crate::kcore::core_numbers;
use crate::traversal::connected_components;
use crate::vertex::VertexId;

/// Summary statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average degree.
    pub avg_degree: f64,
    /// Graph degeneracy (maximum core number).
    pub degeneracy: u32,
    /// Number of connected components.
    pub num_components: usize,
    /// Size of the largest connected component.
    pub largest_component: usize,
}

impl GraphStats {
    /// Computes the statistics of `g`.
    pub fn compute(g: &Graph) -> GraphStats {
        let n = g.num_vertices();
        let degrees: Vec<usize> = (0..n).map(|v| g.degree(VertexId::from(v))).collect();
        let comps = connected_components(g);
        GraphStats {
            num_vertices: n,
            num_edges: g.num_edges(),
            min_degree: degrees.iter().copied().min().unwrap_or(0),
            max_degree: degrees.iter().copied().max().unwrap_or(0),
            avg_degree: g.avg_degree(),
            degeneracy: core_numbers(g).into_iter().max().unwrap_or(0),
            num_components: comps.len(),
            largest_component: comps.iter().map(Vec::len).max().unwrap_or(0),
        }
    }
}

/// Degree histogram: `hist[d]` is the number of vertices with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Returns the `top_k` largest core numbers in non-increasing order.
///
/// The paper mentions trying "the top-k core numbers" as a feature for
/// predicting task running time (Section 1, Challenge 3); the experiment
/// harness reports this feature alongside task times to reproduce that
/// unpredictability observation.
pub fn top_k_core_numbers(g: &Graph, top_k: usize) -> Vec<u32> {
    let mut cores = core_numbers(g);
    cores.sort_unstable_by(|a, b| b.cmp(a));
    cores.truncate(top_k);
    cores
}

/// Edge density of the whole graph: `2m / (n(n-1))` (0.0 for graphs with
/// fewer than two vertices).
pub fn density(g: &Graph) -> f64 {
    let n = g.num_vertices();
    if n < 2 {
        return 0.0;
    }
    2.0 * g.num_edges() as f64 / (n as f64 * (n as f64 - 1.0))
}

/// Clustering coefficient of a single vertex: fraction of pairs of neighbors
/// that are themselves adjacent (0.0 for degree < 2).
pub fn local_clustering(g: &Graph, v: VertexId) -> f64 {
    let nbrs = g.neighbors(v);
    let d = nbrs.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for i in 0..d {
        for j in (i + 1)..d {
            if g.has_edge(nbrs[i], nbrs[j]) {
                closed += 1;
            }
        }
    }
    closed as f64 / (d * (d - 1) / 2) as f64
}

/// Average local clustering coefficient over all vertices (0.0 for an empty
/// graph). O(Σ d(v)²) — intended for the modest-sized stand-in datasets.
pub fn average_clustering(g: &Graph) -> f64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = g.vertices().map(|v| local_clustering(g, v)).sum();
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn k5_plus_isolated() -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                b.add_edge_raw(i, j);
            }
        }
        b.set_min_vertices(7); // two isolated vertices
        b.build()
    }

    #[test]
    fn stats_of_clique_plus_isolated() {
        let g = k5_plus_isolated();
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_vertices, 7);
        assert_eq!(s.num_edges, 10);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.degeneracy, 4);
        assert_eq!(s.num_components, 3);
        assert_eq!(s.largest_component, 5);
        assert!((s.avg_degree - 20.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn degree_histogram_counts() {
        let g = k5_plus_isolated();
        let h = degree_histogram(&g);
        assert_eq!(h[0], 2);
        assert_eq!(h[4], 5);
        assert_eq!(h.iter().sum::<usize>(), 7);
    }

    #[test]
    fn top_k_core_numbers_sorted_desc() {
        let g = k5_plus_isolated();
        let top = top_k_core_numbers(&g, 3);
        assert_eq!(top, vec![4, 4, 4]);
        let all = top_k_core_numbers(&g, 100);
        assert_eq!(all.len(), 7);
        assert_eq!(all[6], 0);
    }

    #[test]
    fn density_of_clique_subset_is_high() {
        let g = k5_plus_isolated();
        // 10 edges over 7 vertices: 20 / 42.
        assert!((density(&g) - 20.0 / 42.0).abs() < 1e-12);
        assert_eq!(density(&Graph::empty(1)), 0.0);
    }

    #[test]
    fn clustering_coefficients() {
        let g = k5_plus_isolated();
        // Inside a clique every vertex has clustering 1.
        assert!((local_clustering(&g, VertexId::new(0)) - 1.0).abs() < 1e-12);
        assert_eq!(local_clustering(&g, VertexId::new(6)), 0.0);
        let avg = average_clustering(&g);
        assert!((avg - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = Graph::empty(0);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.num_components, 0);
        assert_eq!(average_clustering(&g), 0.0);
    }
}
