//! Vertex identifiers.
//!
//! The whole code base uses a compact `u32` new-type for vertex ids. The
//! paper's evaluation graphs are on the order of a few million vertices, so
//! 32 bits are plenty, and the smaller id type roughly halves the memory
//! footprint of adjacency lists and task subgraphs compared to `usize`.

use std::fmt;

/// A vertex identifier in a [`crate::Graph`].
///
/// Ids are dense: a graph with `n` vertices uses ids `0..n`. The ordering of
/// ids is significant for the mining algorithms — the set-enumeration tree of
/// the paper (Figure 5) only extends a candidate set with vertices whose id is
/// *larger* than every vertex already in the set, which is how double counting
/// is avoided.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The maximum representable vertex id.
    pub const MAX: VertexId = VertexId(u32::MAX);

    /// Creates a vertex id from a raw `u32`.
    #[inline]
    pub const fn new(id: u32) -> Self {
        VertexId(id)
    }

    /// Returns the id as a `u32`.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the id as a `usize`, for indexing into per-vertex arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<usize> for VertexId {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize, "vertex id {v} overflows u32");
        VertexId(v as u32)
    }
}

impl From<VertexId> for u32 {
    #[inline]
    fn from(v: VertexId) -> Self {
        v.0
    }
}

impl From<VertexId> for usize {
    #[inline]
    fn from(v: VertexId) -> Self {
        v.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An undirected edge between two vertices.
///
/// Edges are canonicalised so that `src <= dst`; the builder relies on this to
/// de-duplicate parallel edges.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Edge {
    /// Smaller endpoint.
    pub src: VertexId,
    /// Larger endpoint.
    pub dst: VertexId,
}

impl Edge {
    /// Creates a canonicalised edge (endpoints sorted).
    #[inline]
    pub fn new(a: VertexId, b: VertexId) -> Self {
        if a <= b {
            Edge { src: a, dst: b }
        } else {
            Edge { src: b, dst: a }
        }
    }

    /// Returns true if the edge is a self loop.
    #[inline]
    pub fn is_loop(&self) -> bool {
        self.src == self.dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::new(42);
        assert_eq!(v.raw(), 42);
        assert_eq!(v.index(), 42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(usize::from(v), 42);
        assert_eq!(VertexId::from(42u32), v);
        assert_eq!(VertexId::from(42usize), v);
    }

    #[test]
    fn vertex_id_ordering_is_numeric() {
        assert!(VertexId::new(3) < VertexId::new(10));
        assert!(VertexId::new(10) > VertexId::new(3));
        assert_eq!(VertexId::new(7), VertexId::new(7));
    }

    #[test]
    fn vertex_id_display_and_debug() {
        let v = VertexId::new(5);
        assert_eq!(format!("{v}"), "5");
        assert_eq!(format!("{v:?}"), "v5");
    }

    #[test]
    fn edge_canonicalises_endpoints() {
        let e = Edge::new(VertexId::new(9), VertexId::new(2));
        assert_eq!(e.src, VertexId::new(2));
        assert_eq!(e.dst, VertexId::new(9));
        assert!(!e.is_loop());
    }

    #[test]
    fn edge_detects_self_loop() {
        let e = Edge::new(VertexId::new(4), VertexId::new(4));
        assert!(e.is_loop());
    }

    #[test]
    fn edges_with_same_endpoints_compare_equal() {
        let a = Edge::new(VertexId::new(1), VertexId::new(5));
        let b = Edge::new(VertexId::new(5), VertexId::new(1));
        assert_eq!(a, b);
    }
}
