//! Graph traversal primitives.
//!
//! The quasi-clique miner relies on two traversal building blocks:
//!
//! * **Two-hop neighborhoods** `B(v)` / `B̄(v)` (paper Section 3.1): because a
//!   γ-quasi-clique with γ ≥ 0.5 has diameter ≤ 2, the search space of the
//!   task spawned from `v` is contained in `v`'s two-hop ego network.
//! * **Connected components** — quasi-cliques are connected by definition, and
//!   the generators/statistics code uses components for sanity checks.

use crate::graph::Graph;
use crate::vertex::VertexId;

/// Returns `N1(v) = Γ(v)` restricted to ids strictly greater than `min_id`
/// (the "only pull larger vertices" rule of the set-enumeration tree).
pub fn neighbors_greater_than(g: &Graph, v: VertexId, min_id: VertexId) -> Vec<VertexId> {
    g.neighbors(v)
        .iter()
        .copied()
        .filter(|&w| w > min_id)
        .collect()
}

/// Computes the two-hop neighborhood `B̄(v) = N1(v) ∪ N2(v)` of `v`
/// (excluding `v` itself), sorted by vertex id.
pub fn two_hop_neighborhood(g: &Graph, v: VertexId) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    seen[v.index()] = true;
    let mut result: Vec<VertexId> = Vec::new();
    for &u in g.neighbors(v) {
        if !seen[u.index()] {
            seen[u.index()] = true;
            result.push(u);
        }
    }
    let first_hop_len = result.len();
    for i in 0..first_hop_len {
        let u = result[i];
        for &w in g.neighbors(u) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                result.push(w);
            }
        }
    }
    result.sort_unstable();
    result
}

/// Computes the two-hop neighborhood of `v` restricted to vertices with id
/// strictly greater than `v` — exactly the candidate set `B_{>v}(v)` used when
/// spawning the task for `v` (Algorithm 2's initial call and Algorithm 4/6).
pub fn two_hop_greater_than(g: &Graph, v: VertexId) -> Vec<VertexId> {
    two_hop_neighborhood(g, v)
        .into_iter()
        .filter(|&w| w > v)
        .collect()
}

/// Breadth-first search from `start`; returns the distance of every vertex
/// (`u32::MAX` for unreachable ones).
pub fn bfs_distances(g: &Graph, start: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[start.index()] = 0;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        for &w in g.neighbors(v) {
            if dist[w.index()] == u32::MAX {
                dist[w.index()] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Returns the connected components of `g` as vectors of vertex ids (each
/// sorted); components are ordered by their smallest vertex.
pub fn connected_components(g: &Graph) -> Vec<Vec<VertexId>> {
    let n = g.num_vertices();
    let mut comp = vec![usize::MAX; n];
    let mut components: Vec<Vec<VertexId>> = Vec::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = Vec::new();
        let mut stack = vec![start as u32];
        comp[start] = id;
        while let Some(v) = stack.pop() {
            members.push(VertexId::new(v));
            for &w in g.neighbors(VertexId::new(v)) {
                if comp[w.index()] == usize::MAX {
                    comp[w.index()] = id;
                    stack.push(w.raw());
                }
            }
        }
        members.sort_unstable();
        components.push(members);
    }
    components
}

/// Returns true if the subgraph of `g` induced by `vertices` is connected.
/// `vertices` must be duplicate-free. An empty set is considered connected.
pub fn is_connected_subset(g: &Graph, vertices: &[VertexId]) -> bool {
    if vertices.len() <= 1 {
        return true;
    }
    let mut sorted = vertices.to_vec();
    sorted.sort_unstable();
    let mut visited = vec![false; sorted.len()];
    let mut stack = vec![0usize];
    visited[0] = true;
    let mut count = 1usize;
    while let Some(i) = stack.pop() {
        let v = sorted[i];
        for &w in g.neighbors(v) {
            if let Ok(j) = sorted.binary_search(&w) {
                if !visited[j] {
                    visited[j] = true;
                    count += 1;
                    stack.push(j);
                }
            }
        }
    }
    count == sorted.len()
}

/// Exact diameter of the subgraph induced by `vertices` (the longest shortest
/// path). Returns `None` if the induced subgraph is disconnected or empty.
/// Intended for small result subgraphs (quasi-clique diameter checks), not for
/// whole graphs.
pub fn subset_diameter(g: &Graph, vertices: &[VertexId]) -> Option<u32> {
    if vertices.is_empty() {
        return None;
    }
    let mut sorted = vertices.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let mut best = 0u32;
    for start in 0..n {
        // BFS within the subset.
        let mut dist = vec![u32::MAX; n];
        dist[start] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        while let Some(i) = queue.pop_front() {
            for &w in g.neighbors(sorted[i]) {
                if let Ok(j) = sorted.binary_search(&w) {
                    if dist[j] == u32::MAX {
                        dist[j] = dist[i] + 1;
                        queue.push_back(j);
                    }
                }
            }
        }
        for &d in &dist {
            if d == u32::MAX {
                return None;
            }
            best = best.max(d);
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure4() -> Graph {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5),
            (5, 6),
            (2, 6),
            (3, 7),
            (7, 8),
            (3, 8),
        ];
        Graph::from_edges(9, edges.iter().copied()).unwrap()
    }

    #[test]
    fn two_hop_of_e_covers_whole_figure4_graph() {
        // Paper: B̄(e) consists of all vertices; B(e) = {f, g, h, i}.
        let g = figure4();
        let e = VertexId::new(4);
        let bbar = two_hop_neighborhood(&g, e);
        assert_eq!(bbar.len(), 8); // everything except e itself
        let gamma: Vec<u32> = g.neighbors(e).iter().map(|v| v.raw()).collect();
        assert_eq!(gamma, vec![0, 1, 2, 3]);
        let second_hop: Vec<u32> = bbar
            .iter()
            .map(|v| v.raw())
            .filter(|r| !gamma.contains(r))
            .collect();
        assert_eq!(second_hop, vec![5, 6, 7, 8]);
    }

    #[test]
    fn two_hop_greater_than_filters_smaller_ids() {
        let g = figure4();
        let result = two_hop_greater_than(&g, VertexId::new(4));
        let raw: Vec<u32> = result.iter().map(|v| v.raw()).collect();
        assert_eq!(raw, vec![5, 6, 7, 8]);
    }

    #[test]
    fn neighbors_greater_than_respects_threshold() {
        let g = figure4();
        let result = neighbors_greater_than(&g, VertexId::new(3), VertexId::new(3));
        let raw: Vec<u32> = result.iter().map(|v| v.raw()).collect();
        assert_eq!(raw, vec![4, 7, 8]);
    }

    #[test]
    fn bfs_distances_from_a() {
        let g = figure4();
        let dist = bfs_distances(&g, VertexId::new(0));
        assert_eq!(dist[0], 0);
        assert_eq!(dist[4], 1);
        assert_eq!(dist[5], 2); // a-b-f
        assert_eq!(dist[8], 2); // a-d-i
    }

    #[test]
    fn connected_components_single_component() {
        let g = figure4();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 9);
    }

    #[test]
    fn connected_components_multiple() {
        let g = Graph::from_edges(6, [(0, 1), (2, 3)]).unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 4); // {0,1}, {2,3}, {4}, {5}
        assert_eq!(comps[0].len(), 2);
        assert_eq!(comps[2].len(), 1);
    }

    #[test]
    fn is_connected_subset_checks() {
        let g = figure4();
        let subset: Vec<VertexId> = [0u32, 1, 2, 3, 4]
            .iter()
            .map(|&v| VertexId::new(v))
            .collect();
        assert!(is_connected_subset(&g, &subset));
        let disconnected: Vec<VertexId> = [5u32, 8].iter().map(|&v| VertexId::new(v)).collect();
        assert!(!is_connected_subset(&g, &disconnected));
        assert!(is_connected_subset(&g, &[]));
        assert!(is_connected_subset(&g, &[VertexId::new(7)]));
    }

    #[test]
    fn subset_diameter_of_quasi_clique_region() {
        let g = figure4();
        let subset: Vec<VertexId> = [0u32, 1, 2, 3, 4]
            .iter()
            .map(|&v| VertexId::new(v))
            .collect();
        // b and d are not adjacent but share neighbors → diameter 2.
        assert_eq!(subset_diameter(&g, &subset), Some(2));
        let disconnected: Vec<VertexId> = [5u32, 8].iter().map(|&v| VertexId::new(v)).collect();
        assert_eq!(subset_diameter(&g, &disconnected), None);
        assert_eq!(subset_diameter(&g, &[]), None);
        assert_eq!(subset_diameter(&g, &[VertexId::new(0)]), Some(0));
    }
}
