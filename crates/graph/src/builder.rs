//! Incremental graph construction.
//!
//! [`GraphBuilder`] collects undirected edges (in any order, with duplicates
//! and self loops tolerated) and produces a canonical [`Graph`]: dense vertex
//! ids, sorted and de-duplicated adjacency lists, no self loops.

use crate::graph::Graph;
use crate::vertex::VertexId;

/// Builder for [`Graph`].
///
/// ```
/// use qcm_graph::{GraphBuilder, VertexId};
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(VertexId::new(0), VertexId::new(1));
/// b.add_edge(VertexId::new(1), VertexId::new(2));
/// b.add_edge(VertexId::new(2), VertexId::new(0));
/// let g = b.build();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    /// Raw (directed) edge endpoints; every undirected edge is stored once in
    /// the order it was added and mirrored during `build`.
    edges: Vec<(u32, u32)>,
    /// Highest vertex id seen so far plus one.
    min_vertices: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with pre-reserved capacity.
    pub fn with_capacity(num_vertices: usize, num_edges: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(num_edges),
            min_vertices: num_vertices,
        }
    }

    /// Adds an undirected edge. Self loops are ignored; duplicates are removed
    /// during [`GraphBuilder::build`].
    pub fn add_edge(&mut self, a: VertexId, b: VertexId) {
        let (a, b) = (a.raw(), b.raw());
        let needed = (a.max(b) as usize) + 1;
        if needed > self.min_vertices {
            self.min_vertices = needed;
        }
        if a == b {
            return;
        }
        self.edges.push((a, b));
    }

    /// Adds an undirected edge given raw `u32` endpoints.
    pub fn add_edge_raw(&mut self, a: u32, b: u32) {
        self.add_edge(VertexId::new(a), VertexId::new(b));
    }

    /// Ensures the built graph has at least `n` vertices even if the highest
    /// vertex id mentioned by an edge is smaller (trailing isolated vertices).
    pub fn set_min_vertices(&mut self, n: usize) {
        if n > self.min_vertices {
            self.min_vertices = n;
        }
    }

    /// Number of (possibly duplicated) edges added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finalises the builder into a canonical [`Graph`].
    ///
    /// Runs in `O(|V| + |E| log d_max)`: edges are bucketed per-vertex with a
    /// counting pass, then each adjacency list is sorted and de-duplicated.
    pub fn build(self) -> Graph {
        let n = self.min_vertices;
        // Counting pass: degree of every vertex counting both directions.
        let mut counts = vec![0usize; n + 1];
        for &(a, b) in &self.edges {
            counts[a as usize + 1] += 1;
            counts[b as usize + 1] += 1;
        }
        // Prefix sums -> provisional offsets.
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let mut neighbors = vec![VertexId::new(0); counts[n]];
        let mut cursor = counts.clone();
        for &(a, b) in &self.edges {
            neighbors[cursor[a as usize]] = VertexId::new(b);
            cursor[a as usize] += 1;
            neighbors[cursor[b as usize]] = VertexId::new(a);
            cursor[b as usize] += 1;
        }
        // Sort + dedup each list, compacting in place.
        let mut offsets = vec![0usize; n + 1];
        let mut write = 0usize;
        for v in 0..n {
            let (start, end) = (counts[v], counts[v + 1]);
            let list = &mut neighbors[start..end];
            list.sort_unstable();
            let mut last: Option<VertexId> = None;
            let mut kept = 0usize;
            for i in 0..list.len() {
                let w = list[i];
                if last != Some(w) {
                    list[kept] = w;
                    kept += 1;
                    last = Some(w);
                }
            }
            // Move the deduplicated run to the compacted position.
            if start != write {
                // Safe because write <= start always holds.
                for i in 0..kept {
                    neighbors[write + i] = neighbors[start + i];
                }
            }
            write += kept;
            offsets[v + 1] = write;
        }
        neighbors.truncate(write);
        Graph::from_csr(offsets, neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_removes_duplicates_and_loops() {
        let mut b = GraphBuilder::new();
        b.add_edge_raw(0, 1);
        b.add_edge_raw(1, 0);
        b.add_edge_raw(0, 1);
        b.add_edge_raw(2, 2); // loop, dropped
        b.add_edge_raw(1, 2);
        let g = b.build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn builder_respects_min_vertices() {
        let mut b = GraphBuilder::new();
        b.add_edge_raw(0, 1);
        b.set_min_vertices(10);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(VertexId::new(9)), 0);
    }

    #[test]
    fn builder_handles_unordered_input() {
        let mut b = GraphBuilder::new();
        for (a, x) in [(5u32, 3u32), (1, 4), (4, 0), (3, 1), (2, 5)] {
            b.add_edge_raw(a, x);
        }
        let g = b.build();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 5);
        g.validate().unwrap();
        // Every list is sorted.
        for v in g.vertices() {
            let adj = g.neighbors(v);
            assert!(adj.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn empty_builder_produces_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn with_capacity_and_len_track_additions() {
        let mut b = GraphBuilder::with_capacity(4, 8);
        assert!(b.is_empty());
        b.add_edge_raw(0, 3);
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
        let g = b.build();
        assert_eq!(g.num_vertices(), 4);
    }
}
