//! Fixed-capacity vertex bitsets.
//!
//! [`VertexBitSet`] is the dense-set workhorse of the hybrid neighborhood
//! index (see [`crate::neighborhoods`]): one bit per vertex of a graph's
//! (local or global) index space, packed into `u64` words. Membership tests
//! are `O(1)` and set intersection is word-parallel — 64 candidate vertices
//! per AND instruction — which is what turns the miner's `O(log d)`
//! binary-search edge queries and `O(|A| + |B|)` sorted-merge intersections
//! into `O(1)` / `O(n / 64)` operations on high-degree (hub) vertices.

/// A fixed-capacity set of `u32` vertex ids backed by packed `u64` words.
///
/// The capacity is fixed at construction. Mutators ([`VertexBitSet::insert`],
/// [`VertexBitSet::remove`]) panic on ids `>= capacity` in every build — an
/// id landing in the last word's slack bits would otherwise silently corrupt
/// [`VertexBitSet::len`]/[`VertexBitSet::iter`]. Read paths
/// ([`VertexBitSet::contains`]) only debug-assert: a slack bit can never be
/// set, so an in-allocation out-of-range read harmlessly answers `false`,
/// and the hot edge-query loop stays a single word probe.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct VertexBitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl VertexBitSet {
    /// Creates an empty set able to hold ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        VertexBitSet {
            words: vec![0u64; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set holding exactly the given ids (need not be sorted).
    pub fn from_members(capacity: usize, members: &[u32]) -> Self {
        let mut set = VertexBitSet::new(capacity);
        for &v in members {
            set.insert(v);
        }
        set
    }

    /// The fixed id capacity (one past the largest storable id).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True if `v` is in the set.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        let i = v as usize;
        debug_assert!(i < self.capacity, "id {v} out of range {}", self.capacity);
        (self.words[i >> 6] >> (i & 63)) & 1 != 0
    }

    /// Inserts `v`; returns true if it was newly added.
    ///
    /// # Panics
    /// Panics if `v >= capacity`.
    #[inline]
    pub fn insert(&mut self, v: u32) -> bool {
        let i = v as usize;
        assert!(i < self.capacity, "id {v} out of range {}", self.capacity);
        let word = &mut self.words[i >> 6];
        let mask = 1u64 << (i & 63);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Removes `v`; returns true if it was present.
    ///
    /// # Panics
    /// Panics if `v >= capacity`.
    #[inline]
    pub fn remove(&mut self, v: u32) -> bool {
        let i = v as usize;
        assert!(i < self.capacity, "id {v} out of range {}", self.capacity);
        let word = &mut self.words[i >> 6];
        let mask = 1u64 << (i & 63);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// Removes every member (keeps the capacity).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Clears the set and re-targets it to a (possibly different) capacity,
    /// reusing the existing word buffer whenever it is large enough. This is
    /// what lets a scratch pool recycle bitsets across task subgraphs of
    /// different sizes without reallocating.
    pub fn reset(&mut self, capacity: usize) {
        let words = capacity.div_ceil(64);
        self.words.clear();
        self.words.resize(words, 0);
        self.capacity = capacity;
    }

    /// Number of members (popcount over all words).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `|self ∩ other|` by word-parallel AND + popcount. The sets must have
    /// the same capacity.
    pub fn intersection_count(&self, other: &VertexBitSet) -> usize {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `self ← self ∩ other` (word-parallel). The sets must have the same
    /// capacity.
    pub fn intersect_with(&mut self, other: &VertexBitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self ← self ∪ other` (word-parallel). The sets must have the same
    /// capacity.
    pub fn union_with(&mut self, other: &VertexBitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Iterates the members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let base = (wi as u32) << 6;
            BitIter { word, base }
        })
    }

    /// Heap footprint of the word array in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }
}

/// Iterator over the set bits of one word (lowest first).
struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(self.base + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut s = VertexBitSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert reports not-fresh");
        assert_eq!(s.len(), 4);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(128));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 3);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 130);
    }

    #[test]
    fn from_members_and_iter_are_sorted() {
        let s = VertexBitSet::from_members(200, &[150, 3, 64, 3, 65]);
        let got: Vec<u32> = s.iter().collect();
        assert_eq!(got, vec![3, 64, 65, 150]);
    }

    #[test]
    fn intersection_matches_sorted_merge() {
        let a = VertexBitSet::from_members(256, &[1, 5, 64, 70, 128, 200]);
        let b = VertexBitSet::from_members(256, &[5, 64, 71, 128, 255]);
        assert_eq!(a.intersection_count(&b), 3);
        let mut c = a.clone();
        c.intersect_with(&b);
        let got: Vec<u32> = c.iter().collect();
        assert_eq!(got, vec![5, 64, 128]);
        let mut d = a.clone();
        d.union_with(&b);
        assert_eq!(d.len(), a.len() + b.len() - 3);
    }

    #[test]
    fn zero_capacity_is_fine() {
        let s = VertexBitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn memory_is_one_bit_per_capacity_slot() {
        let s = VertexBitSet::new(1024);
        assert_eq!(s.memory_bytes(), 1024 / 8);
        // Capacity rounds up to the next word.
        assert_eq!(VertexBitSet::new(65).memory_bytes(), 16);
    }
}
