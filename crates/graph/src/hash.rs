//! Stable content hashing.
//!
//! [`Fnv1a64`] is a tiny incremental FNV-1a hasher with a fixed, documented
//! initial state, used wherever the workspace needs a hash that is stable
//! across processes, platforms and releases: the binary snapshot checksum in
//! [`crate::io`] and the graph fingerprint ([`crate::Graph::content_hash`])
//! that keys the service-layer result cache. `std::hash` is deliberately not
//! used here — `DefaultHasher` is documented to change between releases and
//! would silently invalidate on-disk checksums and cross-process cache keys.

/// Incremental 64-bit FNV-1a hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a64 {
    state: u64,
}

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a64 {
    /// A hasher in the standard FNV-1a initial state.
    pub fn new() -> Self {
        Fnv1a64 {
            state: FNV_OFFSET_BASIS,
        }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// Absorbs a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, value: u32) {
        self.write(&value.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot convenience: the FNV-1a hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Reference values from the FNV specification.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn integer_writes_are_little_endian_bytes() {
        let mut a = Fnv1a64::new();
        a.write_u32(0x0403_0201);
        a.write_u64(0x0807_0605_0403_0201);
        let mut b = Fnv1a64::new();
        b.write(&[1, 2, 3, 4, 1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(a.finish(), b.finish());
    }
}
