//! # qcm-graph — graph substrate for the quasi-clique miner
//!
//! This crate provides the graph data structures and primitives that the
//! quasi-clique mining algorithms and the task engine are built on:
//!
//! * [`Graph`] — an immutable, CSR-backed simple undirected graph with sorted
//!   adjacency lists (binary-searchable edge queries).
//! * [`GraphBuilder`] — incremental construction with de-duplication,
//!   self-loop removal and vertex-id compaction.
//! * [`kcore`] — the O(|E|) peeling algorithm of Batagelj & Zaversnik used by
//!   the size-threshold pruning rule (P2) of the paper.
//! * [`subgraph`] — induced subgraphs and the [`subgraph::LocalGraph`]
//!   representation that mining tasks carry around (local index space with a
//!   mapping back to global vertex ids).
//! * [`traversal`] — BFS, two-hop neighborhoods (the `B(v)` of the paper),
//!   connected components.
//! * [`bitset`] — fixed-capacity [`VertexBitSet`] with word-parallel set
//!   operations, the scratch type of the hybrid index and the mining kernels.
//! * [`neighborhoods`] — the [`Neighborhoods`] edge-query trait shared by all
//!   backends and the hybrid [`NeighborhoodIndex`] (CSR + bitset rows for
//!   high-degree vertices, `O(1)` hub edge queries), plus the process-wide
//!   [`neighborhoods::perf`] counters the benchmark pipeline reports.
//! * [`io`] — SNAP-style edge-list parsing and writing, plus a checksummed
//!   binary snapshot format.
//! * [`hash`] — stable FNV-1a hashing behind snapshot checksums and the
//!   [`Graph::content_hash`] fingerprint that keys the service result cache.
//! * [`stats`] — degree distributions and summary statistics used by the
//!   experiment harness.
//!
//! Vertex identifiers are [`VertexId`] (a `u32` new-type): the paper's
//! evaluation graphs top out at ~1.4M vertices and 32-bit ids keep adjacency
//! lists and task subgraphs compact.

pub mod bitset;
pub mod builder;
pub mod error;
pub mod graph;
pub mod hash;
pub mod io;
pub mod kcore;
pub mod neighborhoods;
pub mod stats;
pub mod subgraph;
pub mod traversal;
pub mod vertex;

pub use bitset::VertexBitSet;
pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::Graph;
pub use hash::Fnv1a64;
pub use kcore::{core_numbers, degeneracy_ordering, k_core};
pub use neighborhoods::{IndexSpec, NeighborhoodIndex, Neighborhoods};
pub use stats::GraphStats;
pub use subgraph::LocalGraph;
pub use vertex::VertexId;

/// Convenience result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;
