//! k-core decomposition by peeling.
//!
//! The size-threshold pruning rule (P2 / Theorem 2 of the paper) states that a
//! vertex with degree `< k = ⌈γ·(τ_size − 1)⌉` cannot belong to any valid
//! quasi-clique, so the input graph can be shrunk to its k-core before mining.
//! The paper adopts the O(|E|) peeling algorithm of Batagelj & Zaversnik \[13\];
//! this module implements both the targeted `k_core` extraction and the full
//! core-number decomposition (used by the experiment harness for workload
//! characterisation and by the generators for calibration).

use crate::graph::Graph;
use crate::subgraph::induced_subgraph;
use crate::vertex::VertexId;

/// Computes the core number of every vertex with the classic O(|E|)
/// bucket-based peeling algorithm.
///
/// `core[v]` is the largest `k` such that `v` belongs to the k-core of `g`.
pub fn core_numbers(g: &Graph) -> Vec<u32> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<u32> = (0..n).map(|v| g.degree(VertexId::from(v)) as u32).collect();
    let max_deg = *degree.iter().max().unwrap() as usize;

    // Bucket sort vertices by degree.
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &degree {
        bin[d as usize + 1] += 1;
    }
    for i in 1..bin.len() {
        bin[i] += bin[i - 1];
    }
    let mut pos = vec![0usize; n]; // position of vertex in `vert`
    let mut vert = vec![0u32; n]; // vertices sorted by current degree
    {
        let mut cursor = bin.clone();
        for v in 0..n {
            let d = degree[v] as usize;
            pos[v] = cursor[d];
            vert[cursor[d]] = v as u32;
            cursor[d] += 1;
        }
    }
    // bin[d] must point at the first vertex of degree d.
    // (After the cursor pass above it already does.)

    let mut core = degree.clone();
    for i in 0..n {
        let v = vert[i] as usize;
        core[v] = degree[v];
        for &w in g.neighbors(VertexId::from(v)) {
            let w = w.index();
            if degree[w] > degree[v] {
                // Move w one bucket down: swap it with the first vertex of its
                // current bucket, then shrink the bucket boundary.
                let dw = degree[w] as usize;
                let pw = pos[w];
                let first = bin[dw];
                let u = vert[first] as usize;
                if u != w {
                    vert.swap(pw, first);
                    pos[w] = first;
                    pos[u] = pw;
                }
                bin[dw] += 1;
                degree[w] -= 1;
            }
        }
    }
    core
}

/// Returns the maximal subgraph in which every vertex has degree `>= k`
/// (the *k-core*), together with the surviving original vertex ids.
///
/// The returned [`Graph`] uses a compacted id space; `mapping[i]` is the
/// original id of the new vertex `i`. Vertices not in the k-core are dropped.
/// If the k-core is empty, an empty graph and mapping are returned.
pub fn k_core(g: &Graph, k: usize) -> (Graph, Vec<VertexId>) {
    let survivors = k_core_vertices(g, k);
    induced_subgraph(g, &survivors)
}

/// Returns the vertices of the k-core of `g` (sorted by id) without
/// materialising the subgraph. O(|E|).
pub fn k_core_vertices(g: &Graph, k: usize) -> Vec<VertexId> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    if k == 0 {
        return g.vertices().collect();
    }
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(VertexId::from(v))).collect();
    let mut removed = vec![false; n];
    let mut stack: Vec<u32> = (0..n as u32).filter(|&v| degree[v as usize] < k).collect();
    for &v in &stack {
        removed[v as usize] = true;
    }
    while let Some(v) = stack.pop() {
        for &w in g.neighbors(VertexId::new(v)) {
            let w = w.index();
            if !removed[w] {
                degree[w] -= 1;
                if degree[w] < k {
                    removed[w] = true;
                    stack.push(w as u32);
                }
            }
        }
    }
    (0..n as u32)
        .filter(|&v| !removed[v as usize])
        .map(VertexId::new)
        .collect()
}

/// Returns a degeneracy ordering of the graph: vertices in the order they are
/// peeled when repeatedly removing a minimum-degree vertex. The degeneracy of
/// the graph is `max(core_numbers)`.
pub fn degeneracy_ordering(g: &Graph) -> Vec<VertexId> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let core = core_numbers(g);
    // The standard peeling order: sort by (core number, id) is *not* a valid
    // degeneracy ordering in general, so re-run the bucket peeling recording
    // removal order.
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(VertexId::from(v))).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v as u32);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut min_bucket = 0usize;
    while order.len() < n {
        while min_bucket <= max_deg && buckets[min_bucket].is_empty() {
            min_bucket += 1;
        }
        if min_bucket > max_deg {
            break;
        }
        let v = buckets[min_bucket].pop().unwrap() as usize;
        if removed[v] || degree[v] != min_bucket {
            // Stale bucket entry.
            continue;
        }
        removed[v] = true;
        order.push(VertexId::from(v));
        for &w in g.neighbors(VertexId::from(v)) {
            let w = w.index();
            if !removed[w] && degree[w] > 0 {
                degree[w] -= 1;
                buckets[degree[w]].push(w as u32);
                if degree[w] < min_bucket {
                    min_bucket = degree[w];
                }
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    let _ = core; // core numbers retained for potential debug assertions
    order
}

/// The degeneracy (maximum core number) of the graph.
pub fn degeneracy(g: &Graph) -> u32 {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle_plus_tail() -> Graph {
        // Triangle 0-1-2 plus a path 2-3-4.
        Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn core_numbers_triangle_with_tail() {
        let g = triangle_plus_tail();
        let core = core_numbers(&g);
        assert_eq!(core, vec![2, 2, 2, 1, 1]);
    }

    #[test]
    fn k_core_extracts_triangle() {
        let g = triangle_plus_tail();
        let (core2, mapping) = k_core(&g, 2);
        assert_eq!(core2.num_vertices(), 3);
        assert_eq!(core2.num_edges(), 3);
        let mapped: Vec<u32> = mapping.iter().map(|v| v.raw()).collect();
        assert_eq!(mapped, vec![0, 1, 2]);
    }

    #[test]
    fn k_core_zero_is_identity() {
        let g = triangle_plus_tail();
        let (same, mapping) = k_core(&g, 0);
        assert_eq!(same.num_vertices(), g.num_vertices());
        assert_eq!(same.num_edges(), g.num_edges());
        assert_eq!(mapping.len(), g.num_vertices());
    }

    #[test]
    fn k_core_too_large_is_empty() {
        let g = triangle_plus_tail();
        let (empty, mapping) = k_core(&g, 3);
        assert_eq!(empty.num_vertices(), 0);
        assert!(mapping.is_empty());
    }

    #[test]
    fn k_core_cascades_removals() {
        // A path 0-1-2-3-4: the 2-core is empty because peeling the endpoints
        // cascades through the whole path.
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let survivors = k_core_vertices(&g, 2);
        assert!(survivors.is_empty());
    }

    #[test]
    fn clique_core_numbers_are_n_minus_1() {
        let mut b = GraphBuilder::new();
        let n = 6u32;
        for i in 0..n {
            for j in (i + 1)..n {
                b.add_edge_raw(i, j);
            }
        }
        let g = b.build();
        let core = core_numbers(&g);
        assert!(core.iter().all(|&c| c == n - 1));
        assert_eq!(degeneracy(&g), n - 1);
    }

    #[test]
    fn degeneracy_ordering_is_a_permutation_and_valid() {
        let g = triangle_plus_tail();
        let order = degeneracy_ordering(&g);
        assert_eq!(order.len(), g.num_vertices());
        let mut seen = vec![false; g.num_vertices()];
        for v in &order {
            assert!(!seen[v.index()]);
            seen[v.index()] = true;
        }
        // Validity: when vertex v is removed, its remaining (later) degree is
        // at most the graph degeneracy.
        let d = degeneracy(&g) as usize;
        let mut position = vec![0usize; g.num_vertices()];
        for (i, v) in order.iter().enumerate() {
            position[v.index()] = i;
        }
        for (i, v) in order.iter().enumerate() {
            let later = g
                .neighbors(*v)
                .iter()
                .filter(|w| position[w.index()] > i)
                .count();
            assert!(
                later <= d,
                "vertex {v} has {later} later neighbors > degeneracy {d}"
            );
        }
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Graph::empty(0);
        assert!(core_numbers(&g).is_empty());
        assert!(degeneracy_ordering(&g).is_empty());
        assert_eq!(degeneracy(&g), 0);
        let (e, m) = k_core(&g, 1);
        assert_eq!(e.num_vertices(), 0);
        assert!(m.is_empty());
    }
}
