//! Property-based tests for the hybrid bitset neighborhood index: on random
//! graphs, across the degree-threshold boundary, edge queries and
//! intersections through the index must agree **exactly** with the plain CSR
//! binary-search path.

use proptest::prelude::*;
use qcm_graph::{
    bitset::VertexBitSet, subgraph::LocalGraph, Graph, GraphBuilder, IndexSpec, NeighborhoodIndex,
    Neighborhoods, VertexId,
};
use qcm_sync::Arc;

/// Strategy producing a random simple graph with up to `max_n` vertices.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges.min(200)).prop_map(
            move |edges| {
                let mut b = GraphBuilder::new();
                b.set_min_vertices(n);
                for (a, x) in edges {
                    b.add_edge_raw(a, x);
                }
                b.build()
            },
        )
    })
}

/// Thresholds straddling every interesting boundary: disabled, auto, 0 (all
/// vertices indexed), tiny values around real degrees, and one far above the
/// maximum degree (no vertex indexed).
fn arb_spec() -> impl Strategy<Value = IndexSpec> {
    (0usize..15).prop_map(|k| match k {
        0 => IndexSpec::Disabled,
        1 => IndexSpec::Auto,
        2 => IndexSpec::Threshold(usize::MAX),
        t => IndexSpec::Threshold(t - 3),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn index_edge_queries_agree_with_csr(g in arb_graph(24), spec in arb_spec()) {
        let g = Arc::new(g);
        let idx = NeighborhoodIndex::build(g.clone(), spec);
        for u in g.vertices() {
            for v in g.vertices() {
                prop_assert_eq!(
                    idx.has_edge(u, v),
                    g.has_edge(u, v),
                    "spec {:?}, pair ({}, {})", spec, u, v
                );
            }
        }
    }

    #[test]
    fn index_intersections_agree_with_sorted_merge(g in arb_graph(20), spec in arb_spec()) {
        let g = Arc::new(g);
        let idx = NeighborhoodIndex::build(g.clone(), spec);
        for u in g.vertices() {
            for v in g.vertices() {
                prop_assert_eq!(
                    idx.common_neighbor_count(u, v),
                    g.common_neighbor_count(u, v),
                    "spec {:?}, pair ({}, {})", spec, u, v
                );
            }
        }
    }

    #[test]
    fn local_graph_hub_index_agrees_across_threshold_boundary(
        g in arb_graph(20),
        threshold in 0usize..10,
        removals in proptest::collection::vec(0u32..20, 0..6),
    ) {
        let all: Vec<VertexId> = g.vertices().collect();
        let plain = LocalGraph::from_induced(&g, &all);
        let mut indexed = plain.clone();
        indexed.build_hub_index(IndexSpec::Threshold(threshold));
        // The index is derived data: structural equality must hold.
        prop_assert_eq!(&plain, &indexed);

        let mut plain = plain;
        let n = plain.capacity() as u32;
        for r in removals {
            let r = r % n;
            plain.remove_vertex(r);
            indexed.remove_vertex(r);
        }
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(
                    indexed.has_edge(a, b),
                    plain.has_edge(a, b),
                    "threshold {}, pair ({}, {})", threshold, a, b
                );
                prop_assert_eq!(indexed.degree(a), plain.degree(a));
            }
        }
    }

    #[test]
    fn trait_intersect_neighbors_matches_filter(
        g in arb_graph(16),
        spec in arb_spec(),
        candidates in proptest::collection::vec(0u32..16, 0..12),
    ) {
        let g = Arc::new(g);
        let idx = NeighborhoodIndex::build(g.clone(), spec);
        let candidates: Vec<u32> =
            candidates.into_iter().filter(|&c| (c as usize) < g.num_vertices()).collect();
        for v in g.vertices() {
            let mut via_index = Vec::new();
            idx.intersect_neighbors(v.raw(), &candidates, &mut via_index);
            let expected: Vec<u32> = candidates
                .iter()
                .copied()
                .filter(|&c| g.has_edge(v, VertexId::new(c)))
                .collect();
            prop_assert_eq!(via_index, expected, "spec {:?}, v {}", spec, v);
        }
    }

    #[test]
    fn bitset_ops_match_naive_sets(
        a_raw in proptest::collection::vec(0u32..128, 0..40),
        b_raw in proptest::collection::vec(0u32..128, 0..40),
    ) {
        let a: std::collections::BTreeSet<u32> = a_raw.iter().copied().collect();
        let b: std::collections::BTreeSet<u32> = b_raw.iter().copied().collect();
        let sa = VertexBitSet::from_members(128, &a_raw);
        let sb = VertexBitSet::from_members(128, &b_raw);
        prop_assert_eq!(sa.len(), a.len());
        prop_assert_eq!(sa.intersection_count(&sb), a.intersection(&b).count());
        let mut inter = sa.clone();
        inter.intersect_with(&sb);
        let got: Vec<u32> = inter.iter().collect();
        let expected: Vec<u32> = a.intersection(&b).copied().collect();
        prop_assert_eq!(got, expected);
        let mut uni = sa.clone();
        uni.union_with(&sb);
        prop_assert_eq!(uni.len(), a.union(&b).count());
    }
}
