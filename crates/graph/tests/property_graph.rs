//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use qcm_graph::{
    io, k_core,
    kcore::{core_numbers, k_core_vertices},
    subgraph::{induced_subgraph, LocalGraph},
    traversal::{bfs_distances, connected_components, two_hop_neighborhood},
    Graph, GraphBuilder, VertexId,
};

/// Strategy producing a random simple graph with up to `max_n` vertices.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges.min(200)).prop_map(
            move |edges| {
                let mut b = GraphBuilder::new();
                b.set_min_vertices(n);
                for (a, x) in edges {
                    b.add_edge_raw(a, x);
                }
                b.build()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn built_graphs_satisfy_csr_invariants(g in arb_graph(30)) {
        prop_assert!(g.validate().is_ok());
        // Handshake lemma.
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    #[test]
    fn has_edge_is_symmetric(g in arb_graph(20)) {
        for u in g.vertices() {
            for v in g.vertices() {
                prop_assert_eq!(g.has_edge(u, v), g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn kcore_vertices_all_have_degree_at_least_k(g in arb_graph(30), k in 1usize..6) {
        let (core, mapping) = k_core(&g, k);
        core.validate().unwrap();
        for v in core.vertices() {
            prop_assert!(core.degree(v) >= k,
                "vertex {} (global {}) has degree {} < k={}",
                v, mapping[v.index()], core.degree(v), k);
        }
    }

    #[test]
    fn kcore_is_maximal(g in arb_graph(25), k in 1usize..5) {
        // No vertex outside the k-core could be added back: in the subgraph
        // induced by (core ∪ {v}) vertex v must have degree < k OR v fails to
        // survive because the peeling order doesn't matter (k-core is unique).
        let survivors = k_core_vertices(&g, k);
        let core_nums = core_numbers(&g);
        for v in g.vertices() {
            let in_core = survivors.binary_search(&v).is_ok();
            prop_assert_eq!(in_core, core_nums[v.index()] as usize >= k);
        }
    }

    #[test]
    fn induced_subgraph_preserves_edges(g in arb_graph(25)) {
        // Take every other vertex.
        let vs: Vec<VertexId> = g.vertices().filter(|v| v.raw() % 2 == 0).collect();
        let (sub, mapping) = induced_subgraph(&g, &vs);
        sub.validate().unwrap();
        for u in sub.vertices() {
            for v in sub.vertices() {
                if u < v {
                    prop_assert_eq!(
                        sub.has_edge(u, v),
                        g.has_edge(mapping[u.index()], mapping[v.index()])
                    );
                }
            }
        }
    }

    #[test]
    fn local_graph_matches_induced_subgraph(g in arb_graph(25)) {
        let vs: Vec<VertexId> = g.vertices().filter(|v| v.raw() % 3 != 0).collect();
        let (sub, _) = induced_subgraph(&g, &vs);
        let lg = LocalGraph::from_induced(&g, &vs);
        prop_assert_eq!(sub.num_vertices(), lg.num_vertices());
        prop_assert_eq!(sub.num_edges(), lg.num_edges());
    }

    #[test]
    fn two_hop_neighborhood_is_sound(g in arb_graph(25)) {
        for v in g.vertices() {
            let dist = bfs_distances(&g, v);
            let bbar = two_hop_neighborhood(&g, v);
            // Everything in B̄(v) is within distance 2 and != v.
            for w in &bbar {
                prop_assert!(dist[w.index()] <= 2 && *w != v);
            }
            // Everything within distance 1..=2 is in B̄(v).
            for w in g.vertices() {
                if w != v && dist[w.index()] <= 2 && dist[w.index()] > 0 {
                    prop_assert!(bbar.binary_search(&w).is_ok());
                }
            }
        }
    }

    #[test]
    fn components_partition_the_vertex_set(g in arb_graph(30)) {
        let comps = connected_components(&g);
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.num_vertices());
        let mut seen = vec![false; g.num_vertices()];
        for comp in &comps {
            for v in comp {
                prop_assert!(!seen[v.index()]);
                seen[v.index()] = true;
            }
        }
    }

    #[test]
    fn binary_io_roundtrip(g in arb_graph(30)) {
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        let g2 = io::read_binary(buf.as_slice()).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_io_preserves_edges(g in arb_graph(30)) {
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = io::read_edge_list(buf.as_slice()).unwrap();
        prop_assert_eq!(g2.num_edges(), g.num_edges());
    }

    #[test]
    fn local_graph_kcore_agrees_with_graph_kcore(g in arb_graph(25), k in 1usize..5) {
        let all: Vec<VertexId> = g.vertices().collect();
        let mut lg = LocalGraph::from_induced(&g, &all);
        lg.shrink_to_k_core(k);
        let survivors = k_core_vertices(&g, k);
        let mut lg_survivors = lg.alive_global_ids();
        lg_survivors.sort_unstable();
        prop_assert_eq!(lg_survivors, survivors);
    }
}
