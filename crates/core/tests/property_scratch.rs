//! Property tests of the scratch arena.
//!
//! The pooled recursion must be a pure performance change: for any graph,
//! mining parameters and pruning configuration, [`ScratchMode::Pooled`] and
//! the fresh-allocation reference path ([`ScratchMode::Fresh`]) must produce
//! byte-identical result sets, identical raw report counts and identical
//! search statistics — the pool may only change *where* buffers come from,
//! never what the search does with them.

use proptest::prelude::*;
use qcm_core::{MiningParams, PruneConfig, ScratchMode, SerialMiner};
use qcm_graph::{Graph, GraphBuilder, IndexSpec};

/// Random simple graph with `n ≤ max_n` vertices and bounded edge count.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4usize..=max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges).prop_map(
            move |edges| {
                let mut b = GraphBuilder::new();
                b.set_min_vertices(n);
                for (a, x) in edges {
                    b.add_edge_raw(a, x);
                }
                b.build()
            },
        )
    })
}

/// Random mining parameters in the ranges the paper uses (γ ∈ [0.5, 1.0]).
fn arb_params() -> impl Strategy<Value = MiningParams> {
    (5u32..=10, 3usize..=5)
        .prop_map(|(g10, min_size)| MiningParams::new(g10 as f64 / 10.0, min_size))
}

/// A pruning configuration: everything on, everything off, or exactly one
/// rule off — the shapes the hot path branches on.
fn arb_prune() -> impl Strategy<Value = PruneConfig> {
    (0usize..=PruneConfig::rule_names().len() + 1).prop_map(|pick| {
        if pick == 0 {
            PruneConfig::none()
        } else if pick == 1 {
            PruneConfig::all_enabled()
        } else {
            PruneConfig::all_enabled().without(PruneConfig::rule_names()[pick - 2])
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pooled and fresh scratch modes agree on everything observable.
    #[test]
    fn pooled_recursion_is_byte_identical_to_fresh(
        (g, params, prune) in (arb_graph(12), arb_params(), arb_prune())
    ) {
        let pooled = SerialMiner::with_config(params, prune)
            .with_scratch_mode(ScratchMode::Pooled)
            .mine(&g);
        let fresh = SerialMiner::with_config(params, prune)
            .with_scratch_mode(ScratchMode::Fresh)
            .mine(&g);
        prop_assert_eq!(
            &pooled.maximal, &fresh.maximal,
            "result sets diverged at gamma={} min_size={} prune={:?}",
            params.gamma, params.min_size, prune
        );
        prop_assert_eq!(pooled.raw_reported, fresh.raw_reported);
        prop_assert_eq!(pooled.stats, fresh.stats);
        prop_assert_eq!(pooled.kcore_vertices, fresh.kcore_vertices);
    }

    /// The agreement holds regardless of the hub-index policy (the two-hop
    /// kernel takes a word-parallel shortcut through hub rows, which must not
    /// be observable either).
    #[test]
    fn pooled_recursion_matches_fresh_across_index_specs(
        (g, params) in (arb_graph(12), arb_params())
    ) {
        for index in [IndexSpec::Disabled, IndexSpec::Auto, IndexSpec::Threshold(0)] {
            let pooled = SerialMiner::new(params)
                .with_index(index)
                .with_scratch_mode(ScratchMode::Pooled)
                .mine(&g);
            let fresh = SerialMiner::new(params)
                .with_index(index)
                .with_scratch_mode(ScratchMode::Fresh)
                .mine(&g);
            prop_assert_eq!(
                &pooled.maximal, &fresh.maximal,
                "result sets diverged under {:?}", index
            );
            prop_assert_eq!(pooled.stats, fresh.stats);
        }
    }
}
