//! Model-checked schedules of [`qcm_core::CancelToken`].
//!
//! Run with `cargo test -p qcm-core --features model-check --test
//! model_cancel`. Each scenario explores at least 1 000 seeded
//! schedules; failures replay with `QCM_MC_SEED=<seed>`.

#![cfg(feature = "model-check")]

use qcm_core::{CancelReason, CancelToken};
use qcm_sync::atomic::{AtomicBool, AtomicU32, Ordering};
use qcm_sync::model::{explore, explore_seeds, extra_seeds, ModelConfig};
use qcm_sync::{thread, Arc};
use std::time::Duration;

const SCHEDULES: usize = 1_000;
const FAR: Duration = Duration::from_secs(3_600);

fn run(name: &str, f: impl Fn() + Sync) {
    explore(name, SCHEDULES, ModelConfig::default(), &f);
    let extra = extra_seeds();
    if !extra.is_empty() {
        explore_seeds(name, &extra, ModelConfig::default(), &f);
    }
}

/// Cancelling the root of a parent chain reaches every descendant: the
/// observation is monotone while racing the cancel, and guaranteed once
/// the canceller is joined.
#[test]
fn parent_cancellation_reaches_the_whole_chain() {
    run("parent_cancellation_reaches_the_whole_chain", || {
        let parent = CancelToken::new();
        let grandchild = parent.with_deadline(Some(FAR)).with_deadline(Some(FAR));

        let canceller = {
            let parent = parent.clone();
            thread::spawn(move || parent.cancel())
        };
        let observer = {
            let grandchild = grandchild.clone();
            thread::spawn(move || {
                let first = grandchild.check();
                let second = grandchild.check();
                // Monotone: once fired, a token never reads as live again.
                if first == Some(CancelReason::Cancelled) {
                    assert_eq!(second, Some(CancelReason::Cancelled));
                }
                // The far deadline must never be the reported reason.
                assert_ne!(first, Some(CancelReason::DeadlineExceeded));
                assert_ne!(second, Some(CancelReason::DeadlineExceeded));
            })
        };
        canceller.join().unwrap();
        observer.join().unwrap();
        // Join edge: the cancel happened-before this check.
        assert_eq!(grandchild.check(), Some(CancelReason::Cancelled));
    });
}

/// A child's own cancellation must never leak upward to its parent,
/// whatever the interleaving.
#[test]
fn child_cancellation_never_fires_the_parent() {
    run("child_cancellation_never_fires_the_parent", || {
        let parent = CancelToken::new();
        let child = parent.with_deadline(Some(FAR));

        let canceller = thread::spawn({
            let child = child.clone();
            move || child.cancel()
        });
        let observer = thread::spawn({
            let parent = parent.clone();
            move || assert!(!parent.is_cancelled(), "child cancel leaked to parent")
        });
        canceller.join().unwrap();
        observer.join().unwrap();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());
    });
}

/// Racing an explicit cancel against an already-elapsed deadline: the
/// token always reads as fired, and an observation of `Cancelled` is
/// stable — it can never revert to `DeadlineExceeded`.
#[test]
fn explicit_cancel_vs_deadline_race_is_stable() {
    run("explicit_cancel_vs_deadline_race_is_stable", || {
        let token = CancelToken::never().with_deadline(Some(Duration::ZERO));

        let canceller = thread::spawn({
            let token = token.clone();
            move || token.cancel()
        });
        let observer = thread::spawn({
            let token = token.clone();
            move || {
                let first = token.check().expect("deadline already elapsed");
                let second = token.check().expect("fired tokens stay fired");
                if first == CancelReason::Cancelled {
                    assert_eq!(second, CancelReason::Cancelled);
                }
            }
        });
        canceller.join().unwrap();
        observer.join().unwrap();
        // Explicit cancellation takes precedence once it is visible.
        assert_eq!(token.check(), Some(CancelReason::Cancelled));
    });
}

/// The shutdown-claim idiom built on a token: multiple workers race to
/// react to a cancellation, but the swap-based claim hands the cleanup
/// to exactly one of them in every schedule.
#[test]
fn cancellation_is_claimed_exactly_once() {
    run("cancellation_is_claimed_exactly_once", || {
        let token = CancelToken::new();
        let claimed = Arc::new(AtomicBool::new(false));
        let claims = Arc::new(AtomicU32::new(0));

        let canceller = thread::spawn({
            let token = token.clone();
            move || token.cancel()
        });
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let token = token.clone();
                let claimed = claimed.clone();
                let claims = claims.clone();
                thread::spawn(move || {
                    // Bounded poll: a miss is fine, a double claim is not.
                    for _ in 0..2 {
                        // ordering: SeqCst — checked facade runs every atomic
                        // at SeqCst; the claim only needs swap atomicity.
                        if token.is_cancelled() && !claimed.swap(true, Ordering::SeqCst) {
                            claims.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        canceller.join().unwrap();
        for w in workers {
            w.join().unwrap();
        }

        // Whoever saw it, at most one claimed it — and after the joins the
        // token is visibly fired, so main can mop up a missed claim.
        let mut total = claims.load(Ordering::SeqCst);
        assert!(total <= 1, "cancellation claimed {total} times");
        assert!(token.is_cancelled());
        if !claimed.swap(true, Ordering::SeqCst) {
            total += 1;
        }
        assert_eq!(total, 1, "cancellation never claimed");
    });
}
