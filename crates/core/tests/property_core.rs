//! Property-based tests for the mining core.
//!
//! The central invariant of the paper's algorithm is *exactness*: unlike
//! Quick, it must report precisely the maximal γ-quasi-cliques. These tests
//! check that against the brute-force oracle on random graphs, and check the
//! soundness of the pruning rules (no pruning configuration may change the
//! final result set).

use proptest::prelude::*;
use qcm_core::{naive, quick_mine, MiningParams, PruneConfig, SerialMiner};
use qcm_graph::{Graph, GraphBuilder};

/// Random simple graph with `n ≤ max_n` vertices and bounded edge count.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4usize..=max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges).prop_map(
            move |edges| {
                let mut b = GraphBuilder::new();
                b.set_min_vertices(n);
                for (a, x) in edges {
                    b.add_edge_raw(a, x);
                }
                b.build()
            },
        )
    })
}

/// Random mining parameters in the ranges the paper uses (γ ∈ [0.5, 1.0]).
fn arb_params() -> impl Strategy<Value = MiningParams> {
    (5u32..=10, 3usize..=5)
        .prop_map(|(g10, min_size)| MiningParams::new(g10 as f64 / 10.0, min_size))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The serial miner returns exactly the oracle's maximal quasi-cliques.
    #[test]
    fn serial_miner_is_exact((g, params) in (arb_graph(12), arb_params())) {
        let mined = SerialMiner::new(params).mine(&g);
        let oracle = naive::maximal_quasi_cliques(&g, &params);
        prop_assert_eq!(
            mined.maximal, oracle,
            "exactness violated at gamma={} min_size={}", params.gamma, params.min_size
        );
    }

    /// Every reported maximal set really is a valid quasi-clique.
    #[test]
    fn reported_sets_are_valid((g, params) in (arb_graph(14), arb_params())) {
        let mined = SerialMiner::new(params).mine(&g);
        for s in mined.maximal.iter() {
            prop_assert!(qcm_core::is_valid_quasi_clique(&g, s, &params));
        }
    }

    /// Disabling any single pruning rule must not change the maximal result
    /// set (the rules are optimisations, never filters).
    #[test]
    fn pruning_rules_are_sound((g, params) in (arb_graph(11), arb_params()), rule_idx in 0usize..8) {
        let rule = PruneConfig::rule_names()[rule_idx];
        let with_all = SerialMiner::new(params).mine(&g);
        let without =
            SerialMiner::with_config(params, PruneConfig::all_enabled().without(rule)).mine(&g);
        prop_assert_eq!(
            with_all.maximal, without.maximal,
            "disabling rule {} changed the result set", rule
        );
    }

    /// The Quick baseline never reports a maximal set that the fixed
    /// algorithm lacks (its defect is one-sided: it can only lose results).
    #[test]
    fn quick_baseline_is_a_subset((g, params) in (arb_graph(12), arb_params())) {
        let fixed = SerialMiner::new(params).mine(&g);
        let quick = quick_mine(&g, params);
        for s in quick.maximal.iter() {
            prop_assert!(fixed.maximal.contains(s));
        }
        prop_assert!(quick.maximal.len() <= fixed.maximal.len());
    }

    /// k-core preprocessing never removes a vertex that appears in some
    /// maximal valid quasi-clique.
    #[test]
    fn kcore_never_removes_result_vertices((g, params) in (arb_graph(12), arb_params())) {
        let oracle = naive::maximal_quasi_cliques(&g, &params);
        let k = params.kcore_threshold();
        let survivors = qcm_graph::kcore::k_core_vertices(&g, k);
        for s in oracle.iter() {
            for v in s {
                prop_assert!(
                    survivors.binary_search(v).is_ok(),
                    "vertex {} of result {:?} peeled by {}-core", v, s, k
                );
            }
        }
    }

    /// Raw reports always contain the maximal family (post-processing only
    /// ever removes dominated sets).
    #[test]
    fn raw_report_count_upper_bounds_maximal((g, params) in (arb_graph(12), arb_params())) {
        let mined = SerialMiner::new(params).mine(&g);
        prop_assert!(mined.raw_reported >= mined.maximal.len() as u64);
    }
}
