//! # qcm-core — maximal γ-quasi-clique mining
//!
//! This crate implements the algorithmic half of the paper *"Scalable Mining
//! of Maximal Quasi-Cliques: An Algorithm-System Codesign Approach"* (PVLDB
//! 2020): the pruning rules (P1–P7), the iterative bound-based pruning
//! procedure (Algorithm 1), the recursive mining algorithm (Algorithm 2), a
//! Quick-style baseline, a brute-force oracle, and the maximality
//! post-processing.
//!
//! ## Quick start
//!
//! ```
//! use qcm_core::{MiningParams, SerialMiner};
//! use qcm_graph::Graph;
//!
//! // The illustrative graph of Figure 4 of the paper.
//! let g = Graph::from_edges(9, [
//!     (0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 4), (2, 3), (2, 4), (3, 4),
//!     (1, 5), (5, 6), (2, 6), (3, 7), (7, 8), (3, 8),
//! ]).unwrap();
//!
//! // Find all maximal 0.6-quasi-cliques with at least 5 vertices.
//! let output = SerialMiner::new(MiningParams::new(0.6, 5)).mine(&g);
//! assert_eq!(output.maximal.len(), 1); // {a, b, c, d, e}
//! ```
//!
//! Application code should normally go through the unified `qcm::Session`
//! front door in the `qcm` facade crate, which adds builder-time validation
//! ([`QcmError`]), deadlines and cancellation ([`CancelToken`]) and streaming
//! delivery ([`ResultSink`]) on top of these primitives.
//!
//! The parallel, task-based version of the algorithm lives in `qcm-parallel`
//! and runs on the reforged G-thinker-style engine in `qcm-engine`; both reuse
//! the primitives exported here ([`iterative_bounding()`], [`recursive_mine()`],
//! [`MiningContext`], the bounds and rules modules), which is what the paper
//! means by algorithm–system codesign.

pub mod api;
pub mod bounds;
pub mod cancel;
pub mod config;
pub mod context;
pub mod cover;
pub mod critical;
pub mod degrees;
pub mod error;
pub mod fingerprint;
pub mod iterative_bounding;
pub mod maximality;
pub mod naive;
pub mod params;
pub mod quasiclique;
pub mod quick;
pub mod recursive_mine;
pub mod results;
pub mod rules;
pub mod scratch;
pub mod serial;
pub mod stats;

pub use api::{ApiError, ErrorCode, GraphInfo, JobView, SubmitRequest, SubmitResponse};
pub use cancel::{CancelReason, CancelToken, RunOutcome};
pub use config::PruneConfig;
pub use context::MiningContext;
pub use error::QcmError;
pub use fingerprint::QueryKey;
pub use iterative_bounding::iterative_bounding;
pub use maximality::remove_non_maximal;
pub use params::{Gamma, MiningParams};
pub use quasiclique::{is_quasi_clique, is_quasi_clique_local, is_valid_quasi_clique};
pub use quick::quick_mine;
pub use recursive_mine::{recursive_mine, two_hop_bits, two_hop_bits_into, two_hop_local};
pub use results::{
    CandidateForwarder, CollectingSink, CountingSink, QuasiCliqueSet, QuasiCliqueSink, ResultSink,
};
pub use scratch::{MiningScratch, ScratchMode};
#[allow(deprecated)]
pub use serial::mine_serial;
pub use serial::{MiningOutput, SerialMiner};
pub use stats::MiningStats;
