//! Result collection.
//!
//! The mining algorithms report candidate quasi-cliques through a
//! [`QuasiCliqueSink`]; the paper's "result file" becomes an in-memory
//! [`QuasiCliqueSet`] (a canonicalised, de-duplicated set of vertex sets) in
//! this reproduction, with the same post-processing contract: reported sets
//! may include non-maximal quasi-cliques, which
//! [`crate::maximality::remove_non_maximal`] filters out afterwards.

use qcm_graph::VertexId;
use std::collections::BTreeSet;

/// Receiver of reported quasi-cliques.
///
/// Implementations must tolerate duplicate and non-maximal reports — the
/// divide-and-conquer algorithms intentionally over-report and rely on
/// post-processing, exactly like the paper's "append to the result file".
pub trait QuasiCliqueSink {
    /// Reports a candidate quasi-clique by its member vertex ids (in any
    /// order).
    fn report(&mut self, members: Vec<VertexId>);
}

/// A sink that only counts reports (used by benchmarks where materialising
/// results would distort timing).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of reports received.
    pub count: u64,
}

impl QuasiCliqueSink for CountingSink {
    fn report(&mut self, _members: Vec<VertexId>) {
        self.count += 1;
    }
}

/// Streaming receiver for a `qcm::Session::run_streaming` run.
///
/// This is the caller-facing sibling of the internal [`QuasiCliqueSink`] seam:
/// while a run is in flight the session forwards every raw report to
/// [`ResultSink::on_candidate`], and as each result is proven maximal by the
/// post-processing phase it is pushed to [`ResultSink::on_maximal`] — so a
/// caller can render incremental progress and stream final results without
/// waiting for the whole report.
pub trait ResultSink {
    /// A raw candidate was reported by the miner. Candidates may be duplicated
    /// or non-maximal; with the serial backend this fires live during the
    /// search, with the parallel backend it fires as the engine's result rows
    /// are drained.
    fn on_candidate(&mut self, _members: &[VertexId]) {}

    /// `members` has been proven maximal (no reported superset exists).
    /// Members are sorted by vertex id. Fired once per maximal result, in
    /// lexicographic order.
    fn on_maximal(&mut self, members: &[VertexId]);
}

/// The simplest useful [`ResultSink`]: counts candidates and collects the
/// maximal sets in order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CollectingSink {
    /// Number of raw candidate reports observed.
    pub candidates: u64,
    /// The maximal quasi-cliques, in the order they were proven maximal.
    pub maximal: Vec<Vec<VertexId>>,
}

impl ResultSink for CollectingSink {
    fn on_candidate(&mut self, _members: &[VertexId]) {
        self.candidates += 1;
    }

    fn on_maximal(&mut self, members: &[VertexId]) {
        self.maximal.push(members.to_vec());
    }
}

impl ResultSink for Vec<Vec<VertexId>> {
    fn on_maximal(&mut self, members: &[VertexId]) {
        self.push(members.to_vec());
    }
}

/// Adapter that lets a [`ResultSink`] observe the miner's raw report stream
/// (the [`QuasiCliqueSink`] side of the seam).
pub struct CandidateForwarder<'a> {
    sink: &'a mut dyn ResultSink,
}

impl<'a> CandidateForwarder<'a> {
    /// Wraps `sink` so raw reports are forwarded to `on_candidate`.
    pub fn new(sink: &'a mut dyn ResultSink) -> Self {
        CandidateForwarder { sink }
    }
}

impl QuasiCliqueSink for CandidateForwarder<'_> {
    fn report(&mut self, members: Vec<VertexId>) {
        self.sink.on_candidate(&members);
    }
}

/// A canonicalised, de-duplicated set of quasi-cliques.
///
/// Each member set is stored sorted by vertex id, so set equality and subset
/// tests are well-defined regardless of the order in which the miner visited
/// vertices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QuasiCliqueSet {
    sets: BTreeSet<Vec<VertexId>>,
}

impl QuasiCliqueSet {
    /// Creates an empty result set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a quasi-clique (members in any order). Returns true if it was
    /// not already present.
    pub fn insert(&mut self, mut members: Vec<VertexId>) -> bool {
        members.sort_unstable();
        members.dedup();
        self.sets.insert(members)
    }

    /// Number of distinct quasi-cliques.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True if no quasi-cliques have been recorded.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// True if the given set (in any order) is present.
    pub fn contains(&self, members: &[VertexId]) -> bool {
        let mut key = members.to_vec();
        key.sort_unstable();
        key.dedup();
        self.sets.contains(&key)
    }

    /// True if some recorded quasi-clique is a (non-strict) superset of
    /// `members`.
    pub fn contains_superset_of(&self, members: &[VertexId]) -> bool {
        let mut needle = members.to_vec();
        needle.sort_unstable();
        needle.dedup();
        self.sets.iter().any(|s| is_sorted_subset(&needle, s))
    }

    /// Iterates over the canonical (sorted) member vectors.
    pub fn iter(&self) -> impl Iterator<Item = &Vec<VertexId>> {
        self.sets.iter()
    }

    /// Consumes the set and returns the canonical member vectors in
    /// lexicographic order.
    pub fn into_sorted_vec(self) -> Vec<Vec<VertexId>> {
        self.sets.into_iter().collect()
    }

    /// Keeps only the sets for which `keep` returns true (members are passed
    /// in canonical sorted order). Used by the engine's post-mining result
    /// validation.
    pub fn retain_sets(&mut self, mut keep: impl FnMut(&[VertexId]) -> bool) {
        self.sets.retain(|members| keep(members));
    }

    /// Merges another result set into this one.
    pub fn merge(&mut self, other: QuasiCliqueSet) {
        self.sets.extend(other.sets);
    }

    /// Removes and returns all member sets, leaving the set empty.
    pub fn drain(&mut self) -> Vec<Vec<VertexId>> {
        std::mem::take(&mut self.sets).into_iter().collect()
    }
}

impl QuasiCliqueSink for QuasiCliqueSet {
    fn report(&mut self, members: Vec<VertexId>) {
        self.insert(members);
    }
}

impl QuasiCliqueSink for Vec<Vec<VertexId>> {
    fn report(&mut self, mut members: Vec<VertexId>) {
        members.sort_unstable();
        self.push(members);
    }
}

impl FromIterator<Vec<VertexId>> for QuasiCliqueSet {
    fn from_iter<T: IntoIterator<Item = Vec<VertexId>>>(iter: T) -> Self {
        let mut set = QuasiCliqueSet::new();
        for members in iter {
            set.insert(members);
        }
        set
    }
}

/// True if sorted slice `a` is a subset of sorted slice `b`.
pub(crate) fn is_sorted_subset(a: &[VertexId], b: &[VertexId]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut j = 0usize;
    for &x in a {
        // Advance j until b[j] >= x.
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<VertexId> {
        raw.iter().map(|&v| VertexId::new(v)).collect()
    }

    #[test]
    fn insert_canonicalises_and_dedups() {
        let mut set = QuasiCliqueSet::new();
        assert!(set.insert(ids(&[3, 1, 2])));
        assert!(!set.insert(ids(&[1, 2, 3])));
        assert!(!set.insert(ids(&[2, 3, 1, 1])));
        assert_eq!(set.len(), 1);
        assert!(set.contains(&ids(&[2, 1, 3])));
        assert!(!set.contains(&ids(&[1, 2])));
    }

    #[test]
    fn superset_queries() {
        let mut set = QuasiCliqueSet::new();
        set.insert(ids(&[1, 2, 3, 4]));
        set.insert(ids(&[10, 11]));
        assert!(set.contains_superset_of(&ids(&[2, 4])));
        assert!(set.contains_superset_of(&ids(&[1, 2, 3, 4])));
        assert!(!set.contains_superset_of(&ids(&[4, 10])));
        assert!(set.contains_superset_of(&[]));
    }

    #[test]
    fn counting_sink_counts() {
        let mut sink = CountingSink::default();
        sink.report(ids(&[1, 2]));
        sink.report(ids(&[1, 2])); // duplicates still counted: it's a raw counter
        assert_eq!(sink.count, 2);
    }

    #[test]
    fn vec_sink_sorts_members() {
        let mut sink: Vec<Vec<VertexId>> = Vec::new();
        sink.report(ids(&[5, 3, 4]));
        assert_eq!(sink[0], ids(&[3, 4, 5]));
    }

    #[test]
    fn merge_and_drain() {
        let mut a: QuasiCliqueSet = vec![ids(&[1, 2]), ids(&[3, 4])].into_iter().collect();
        let b: QuasiCliqueSet = vec![ids(&[3, 4]), ids(&[5, 6])].into_iter().collect();
        a.merge(b);
        assert_eq!(a.len(), 3);
        let drained = a.drain();
        assert_eq!(drained.len(), 3);
        assert!(a.is_empty());
    }

    #[test]
    fn sorted_subset_helper() {
        assert!(is_sorted_subset(&ids(&[1, 3]), &ids(&[1, 2, 3])));
        assert!(is_sorted_subset(&[], &ids(&[1])));
        assert!(!is_sorted_subset(&ids(&[1, 4]), &ids(&[1, 2, 3])));
        assert!(!is_sorted_subset(&ids(&[1, 2, 3]), &ids(&[1, 2])));
        assert!(is_sorted_subset(&ids(&[2]), &ids(&[1, 2, 3])));
    }

    #[test]
    fn collecting_sink_separates_candidates_from_maximal() {
        let mut sink = CollectingSink::default();
        sink.on_candidate(&ids(&[1, 2]));
        sink.on_candidate(&ids(&[1, 2, 3]));
        sink.on_maximal(&ids(&[1, 2, 3]));
        assert_eq!(sink.candidates, 2);
        assert_eq!(sink.maximal, vec![ids(&[1, 2, 3])]);
    }

    #[test]
    fn vec_result_sink_collects_maximal_sets() {
        let mut sink: Vec<Vec<VertexId>> = Vec::new();
        ResultSink::on_maximal(&mut sink, &ids(&[4, 5]));
        ResultSink::on_candidate(&mut sink, &ids(&[9])); // default no-op
        assert_eq!(sink, vec![ids(&[4, 5])]);
    }

    #[test]
    fn candidate_forwarder_bridges_the_raw_stream() {
        let mut sink = CollectingSink::default();
        {
            let mut fwd = CandidateForwarder::new(&mut sink);
            fwd.report(ids(&[3, 1]));
            fwd.report(ids(&[2, 4]));
        }
        assert_eq!(sink.candidates, 2);
        assert!(sink.maximal.is_empty());
    }

    #[test]
    fn into_sorted_vec_is_lexicographic() {
        let set: QuasiCliqueSet = vec![ids(&[5, 6]), ids(&[1, 9]), ids(&[1, 2])]
            .into_iter()
            .collect();
        let v = set.into_sorted_vec();
        assert_eq!(v, vec![ids(&[1, 2]), ids(&[1, 9]), ids(&[5, 6])]);
    }
}
