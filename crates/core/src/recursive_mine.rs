//! The recursive mining algorithm — Algorithm 2 of the paper.
//!
//! `recursive_mine(S, ext(S))` explores the set-enumeration subtree rooted at
//! `S` (Figure 5): it picks the cover vertex, iterates over the non-covered
//! extension vertices `v`, forms `S' = S ∪ {v}` with
//! `ext(S') = (ext(S) \ {v}) ∩ B(v)`, applies Algorithm 1 to prune, and
//! recurses. The boolean return value (`true` iff some valid quasi-clique
//! strictly extending `S` was found) lets a parent avoid reporting a
//! non-maximal `G(S')` when a larger result below it already exists — the
//! remaining non-maximal reports are removed by the post-processing phase,
//! exactly as in the paper.

use crate::context::MiningContext;
use crate::cover::{find_cover_vertex_into, move_cover_to_tail_with};
use crate::iterative_bounding::iterative_bounding;
use crate::quasiclique::is_quasi_clique_local;
use qcm_graph::bitset::VertexBitSet;
use qcm_graph::neighborhoods::perf;

/// Computes the set of local vertices within two hops of `v` in the task
/// subgraph (the `B(v)` of pruning rule P1) as a bitset, excluding `v`
/// itself.
pub fn two_hop_bits(g: &qcm_graph::LocalGraph, v: u32) -> VertexBitSet {
    let mut seen = VertexBitSet::new(g.capacity());
    let mut first_hop: Vec<u32> = Vec::new();
    two_hop_bits_into(g, v, &mut seen, &mut first_hop);
    seen
}

/// Allocation-free core of [`two_hop_bits`]: fills `seen` (which must be
/// cleared and sized to `g.capacity()`) with `B(v) \ {v}`, using `first_hop`
/// as scratch for the frontier between the two hops.
///
/// When the graph has no peeled vertices (always true for the mining-phase
/// subgraphs, which are built once and never shrunk), a first-hop hub's
/// second hop is absorbed by word-parallel OR of its dense row instead of
/// walking its adjacency list — the same trick that made the degree kernels
/// cheap. With peeled vertices the rows may carry dead bits, so the walk
/// path (which filters liveness) is used instead.
pub fn two_hop_bits_into(
    g: &qcm_graph::LocalGraph,
    v: u32,
    seen: &mut VertexBitSet,
    first_hop: &mut Vec<u32>,
) {
    debug_assert!(seen.is_empty() && seen.capacity() == g.capacity());
    seen.insert(v);
    first_hop.clear();
    for u in g.neighbors(v) {
        if seen.insert(u) {
            first_hop.push(u);
        }
    }
    let rows_are_exact = g.num_vertices() == g.capacity();
    for &u in first_hop.iter() {
        match g.hub_row(u) {
            Some(row) if rows_are_exact => seen.union_with(row),
            _ => {
                for w in g.neighbors(u) {
                    seen.insert(w);
                }
            }
        }
    }
    seen.remove(v);
}

/// Computes the set of local vertices within two hops of `v` in the task
/// subgraph (the `B(v)` of pruning rule P1), excluding `v` itself. Sorted.
pub fn two_hop_local(g: &qcm_graph::LocalGraph, v: u32) -> Vec<u32> {
    two_hop_bits(g, v).iter().collect()
}

/// Writes `ext` restricted to the two-hop neighborhood of `v` into `out`
/// (cleared first) when the diameter rule applies (γ ≥ 0.5 and the rule is
/// enabled); otherwise copies `ext` as-is. The two-hop bitset and hop
/// frontier come from the context's scratch arena. Shared by this serial
/// recursion and both decomposition loops in `qcm-parallel`.
///
/// The membership filter is an `O(1)`-per-candidate bitset probe (the old
/// path binary-searched a sorted two-hop list per candidate).
pub fn shrink_by_diameter(ctx: &mut MiningContext<'_>, ext: &[u32], v: u32, out: &mut Vec<u32>) {
    out.clear();
    if ctx.config.diameter && ctx.params.gamma.diameter_two_applies() {
        let graph = ctx.graph;
        let mut b_v = ctx.scratch.take_bitset(graph.capacity());
        let mut hop = ctx.scratch.take_vec();
        two_hop_bits_into(graph, v, &mut b_v, &mut hop);
        perf::count_intersections(1);
        out.extend(ext.iter().copied().filter(|&u| b_v.contains(u)));
        ctx.scratch.put_vec(hop);
        ctx.scratch.put_bitset(b_v);
    } else {
        out.extend_from_slice(ext);
    }
}

/// Algorithm 2: mines all valid quasi-cliques extending `S` (including
/// `G(S ∪ ext(S))` via the lookahead), reporting them through the context's
/// sink. Returns `true` iff some valid quasi-clique **strictly** containing
/// `S` was found.
///
/// `ext` is consumed destructively (vertices are removed as they are
/// processed, and cover vertices are moved to the tail), matching the paper's
/// in-place treatment of the extension list.
/// Cover-vertex pruning over scratch frames (Algorithm 2 lines 2–4): moves
/// the winning cover set `C_S(u)` to the tail of `ext` and returns the
/// branchable prefix length. Shared by this serial recursion and both
/// decomposition loops in `qcm-parallel`.
pub fn cover_prune_prefix(ctx: &mut MiningContext<'_>, s: &[u32], ext: &mut [u32]) -> usize {
    let graph = ctx.graph;
    let params = ctx.params;
    let mut covered = ctx.scratch.take_vec();
    find_cover_vertex_into(graph, s, ext, &params, &mut ctx.scratch, &mut covered);
    ctx.stats.cover_skipped += covered.len() as u64;
    let prefix_len = move_cover_to_tail_with(ext, &covered, &mut ctx.scratch);
    ctx.scratch.put_vec(covered);
    prefix_len
}

pub fn recursive_mine(ctx: &mut MiningContext<'_>, s: &[u32], ext: &mut Vec<u32>) -> bool {
    let mut found = false;

    // Lines 2–4: cover-vertex pruning — the covered tail is never used as the
    // next branching vertex.
    let prefix_len = if ctx.config.cover_vertex {
        cover_prune_prefix(ctx, s, ext)
    } else {
        ext.len()
    };
    // This depth's frame of branching vertices; the arena's high-water mark
    // tracks the deepest recursion, after which no tree node allocates.
    let mut branch = ctx.scratch.take_vec_cap(prefix_len);
    branch.extend_from_slice(&ext[..prefix_len]);

    let mut i = 0usize;
    while i < branch.len() {
        let v = branch[i];
        i += 1;
        // Cooperative cancellation: abandon the remaining subtrees. Everything
        // reported so far stays valid; the run is labelled partial upstream.
        if ctx.is_cancelled() {
            break;
        }
        // Line 6: not enough vertices left to ever reach τ_size.
        if s.len() + ext.len() < ctx.params.min_size {
            break;
        }
        // Lines 8–10: lookahead — if S together with the entire remaining
        // extension already forms a quasi-clique, it is maximal within this
        // subtree and everything below is redundant.
        if ctx.config.lookahead {
            let mut whole = ctx.scratch.take_vec_cap(s.len() + ext.len());
            whole.extend_from_slice(s);
            whole.extend_from_slice(ext);
            let hit = is_quasi_clique_local(ctx.graph, &whole, &ctx.params);
            if hit {
                ctx.stats.lookahead_hits += 1;
                ctx.report(&whole);
            }
            ctx.scratch.put_vec(whole);
            if hit {
                found = true;
                break;
            }
        }
        // Line 11: S' = S ∪ {v}; v leaves ext for this and all later
        // iterations (the set-enumeration tree's "only extend with larger
        // vertices" discipline).
        ext.retain(|&u| u != v);
        let mut s_prime = ctx.scratch.take_vec_cap(s.len() + 1);
        s_prime.extend_from_slice(s);
        s_prime.push(v);
        ctx.stats.nodes_expanded += 1;

        // Line 12: diameter-based shrink of the new extension set.
        let mut ext_prime = ctx.scratch.take_vec();
        shrink_by_diameter(ctx, ext, v, &mut ext_prime);

        if ext_prime.is_empty() {
            // Lines 13–16: nothing to extend S' with; examine G(S') directly.
            // (The original Quick misses this check — toggled for the
            // baseline.)
            if !ctx.emulate_quick_omissions && ctx.report_if_valid(&s_prime) {
                found = true;
            }
        } else {
            // Line 18: apply the pruning rules; this may also grow S' via the
            // critical-vertex rule and will report G(S') itself when
            // appropriate.
            let pruned = iterative_bounding(ctx, &mut s_prime, &mut ext_prime);

            // Lines 20–25.
            if !pruned && s_prime.len() + ext_prime.len() >= ctx.params.min_size {
                let child_found = recursive_mine(ctx, &s_prime, &mut ext_prime);
                found = found || child_found;
                if !child_found && ctx.report_if_valid(&s_prime) {
                    found = true;
                }
            }
        }
        ctx.scratch.put_vec(ext_prime);
        ctx.scratch.put_vec(s_prime);
    }
    ctx.scratch.put_vec(branch);
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PruneConfig;
    use crate::params::MiningParams;
    use crate::results::QuasiCliqueSet;
    use qcm_graph::{Graph, LocalGraph, VertexId};

    fn figure4_local() -> LocalGraph {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5),
            (5, 6),
            (2, 6),
            (3, 7),
            (7, 8),
            (3, 8),
        ];
        let g = Graph::from_edges(9, edges.iter().copied()).unwrap();
        let all: Vec<VertexId> = g.vertices().collect();
        LocalGraph::from_induced(&g, &all)
    }

    fn ids(raw: &[u32]) -> Vec<VertexId> {
        raw.iter().map(|&v| VertexId::new(v)).collect()
    }

    /// Mines the whole Figure 4 graph serially: spawn from every vertex with
    /// the "> v" two-hop extension, exactly like the paper's initial calls.
    fn mine_figure4(params: MiningParams, config: PruneConfig) -> QuasiCliqueSet {
        let g = figure4_local();
        let mut sink = QuasiCliqueSet::new();
        for v in 0..9u32 {
            let mut ctx = MiningContext::with_config(&g, params, config, &mut sink);
            let mut ext: Vec<u32> = two_hop_local(&g, v)
                .into_iter()
                .filter(|&u| u > v)
                .collect();
            let s = vec![v];
            let found = recursive_mine(&mut ctx, &s, &mut ext);
            // The root S = {v} is a singleton: never reportable on its own.
            let _ = found;
        }
        sink
    }

    #[test]
    fn figure4_point_six_mining_finds_the_dense_region() {
        // γ = 0.6, τ_size = 5: the only 5-vertex 0.6-quasi-clique in Figure 4
        // is {a, b, c, d, e}.
        let results = mine_figure4(MiningParams::new(0.6, 5), PruneConfig::all_enabled());
        assert!(results.contains(&ids(&[0, 1, 2, 3, 4])));
        // No larger set can qualify: adding any outer vertex drops its degree
        // ratio below 0.6, so nothing reported may strictly contain it.
        for r in results.iter() {
            assert!(r.len() <= 5);
        }
    }

    #[test]
    fn figure4_point_nine_mining_finds_the_four_vertex_core() {
        // γ = 0.9, τ_size = 4 effectively asks for near-cliques of size ≥ 4:
        // {a, b, c, e}, {a, c, d, e} and {a, b, c, d, e} is NOT 0.9-dense
        // (each vertex would need ⌈0.9·4⌉ = 4 neighbors, i.e. a clique).
        let results = mine_figure4(MiningParams::new(0.9, 4), PruneConfig::all_enabled());
        assert!(results.contains(&ids(&[0, 1, 2, 4])));
        assert!(results.contains(&ids(&[0, 2, 3, 4])));
        assert!(!results.contains(&ids(&[0, 1, 2, 3, 4])));
    }

    #[test]
    fn pruning_rules_do_not_change_results_on_figure4() {
        for (gamma, min_size) in [(0.6, 4), (0.7, 3), (0.9, 4), (0.5, 5)] {
            let params = MiningParams::new(gamma, min_size);
            let full = mine_figure4(params, PruneConfig::all_enabled());
            let bare = mine_figure4(params, PruneConfig::none());
            // After removing non-maximal entries both runs must agree.
            let full = crate::maximality::remove_non_maximal(full);
            let bare = crate::maximality::remove_non_maximal(bare);
            assert_eq!(
                full, bare,
                "pruned vs unpruned mismatch at gamma={gamma}, min_size={min_size}"
            );
        }
    }

    #[test]
    fn lookahead_reports_the_whole_candidate_when_dense() {
        // Mining a 5-clique: the first task (spawned from vertex 0) should hit
        // the lookahead immediately.
        let edges: Vec<(u32, u32)> = (0..5u32)
            .flat_map(|i| ((i + 1)..5).map(move |j| (i, j)))
            .collect();
        let g = Graph::from_edges(5, edges.iter().copied()).unwrap();
        let all: Vec<VertexId> = g.vertices().collect();
        let lg = LocalGraph::from_induced(&g, &all);
        let mut sink = QuasiCliqueSet::new();
        let params = MiningParams::new(0.9, 5);
        let mut ctx = MiningContext::new(&lg, params, &mut sink);
        let mut ext: Vec<u32> = (1..5).collect();
        let found = recursive_mine(&mut ctx, &[0], &mut ext);
        assert!(found);
        assert!(ctx.stats.lookahead_hits >= 1);
        assert!(sink.contains(&ids(&[0, 1, 2, 3, 4])));
    }

    #[test]
    fn cancelled_context_stops_the_recursion_without_reports() {
        let g = figure4_local();
        let mut sink = QuasiCliqueSet::new();
        let params = MiningParams::new(0.6, 5);
        let mut ctx = MiningContext::new(&g, params, &mut sink);
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        ctx.cancel = token;
        let mut ext: Vec<u32> = (1..9).collect();
        let found = recursive_mine(&mut ctx, &[0], &mut ext);
        assert!(!found);
        assert_eq!(ctx.stats.nodes_expanded, 0);
        assert!(sink.is_empty(), "a pre-cancelled run must not report");
    }

    #[test]
    fn two_hop_local_matches_figure4_expectations() {
        let g = figure4_local();
        // B̄(e) \ {e} covers every other vertex.
        assert_eq!(two_hop_local(&g, 4).len(), 8);
        // B̄(f) = {b, g, a, c, e} ∪ {c's part via g}: f-b, f-g; two hops: a, c,
        // e (via b), c (via g).
        let two_f = two_hop_local(&g, 5);
        assert!(two_f.contains(&1) && two_f.contains(&6));
        assert!(two_f.contains(&0) && two_f.contains(&2) && two_f.contains(&4));
        assert!(!two_f.contains(&7));
    }

    #[test]
    fn quick_omissions_lose_results_somewhere() {
        // The emulated Quick baseline must never report *more* maximal results
        // than the fixed algorithm, and on suitable inputs it reports fewer.
        // (The specific loss depends on critical-vertex timing; the guarantee
        // tested here is one-sided containment.)
        let g = figure4_local();
        let params = MiningParams::new(0.9, 4);
        let mine = |quick: bool| {
            let mut sink = QuasiCliqueSet::new();
            for v in 0..9u32 {
                let mut ctx = MiningContext::new(&g, params, &mut sink);
                ctx.emulate_quick_omissions = quick;
                let mut ext: Vec<u32> = two_hop_local(&g, v)
                    .into_iter()
                    .filter(|&u| u > v)
                    .collect();
                recursive_mine(&mut ctx, &[v], &mut ext);
            }
            crate::maximality::remove_non_maximal(sink)
        };
        let fixed = mine(false);
        let quick = mine(true);
        for r in quick.iter() {
            assert!(
                fixed.contains(r),
                "quick baseline reported {r:?} which the fixed algorithm lacks"
            );
        }
        assert!(quick.len() <= fixed.len());
    }
}
