//! Shared mining context.
//!
//! A [`MiningContext`] bundles everything the recursive algorithms need while
//! walking one task subgraph: the subgraph itself, the mining parameters, the
//! pruning configuration, the result sink and the statistics counters. Both
//! the serial miner (Algorithm 2) and the engine-side time-delayed miner
//! (Algorithm 10 in `qcm-parallel`) operate through this context, which is
//! what makes the "algorithm-system codesign" reuse possible.

use crate::cancel::CancelToken;
use crate::config::PruneConfig;
use crate::params::MiningParams;
use crate::quasiclique::is_quasi_clique_local;
use crate::results::QuasiCliqueSink;
use crate::scratch::MiningScratch;
use crate::stats::MiningStats;
use qcm_graph::LocalGraph;

/// Mutable state shared by one mining invocation over a single task subgraph.
pub struct MiningContext<'a> {
    /// The task subgraph being mined (local index space).
    pub graph: &'a LocalGraph,
    /// Mining parameters (γ, τ_size).
    pub params: MiningParams,
    /// Which pruning rules are enabled.
    pub config: PruneConfig,
    /// Where reported quasi-cliques go (global vertex ids).
    pub sink: &'a mut dyn QuasiCliqueSink,
    /// Counters updated while mining.
    pub stats: MiningStats,
    /// When true, reproduce the two result-missing omissions of the original
    /// Quick algorithm that the paper fixes (skipping the `G(S')` check when
    /// `ext(S')` becomes empty, and skipping the `G(S)` check before a
    /// critical-vertex expansion). Only the Quick baseline sets this.
    pub emulate_quick_omissions: bool,
    /// Cooperative cancellation: the recursive miners poll this at the top of
    /// their expansion loops and unwind early when it fires. Defaults to a
    /// never-firing token.
    pub cancel: CancelToken,
    /// True once a poll of `cancel` actually observed the token fired and cut
    /// the search short. Drivers use this — not a fresh token sample — to
    /// label the run, so a run that explored everything is never mislabelled
    /// as partial just because the deadline passed during post-processing.
    pub interrupted: bool,
    /// Reusable frame pool for the recursion hot path. Defaults to an empty
    /// pooled arena; drivers that process many roots/tasks move one arena
    /// from context to context (`std::mem::take`) so the frames warmed up by
    /// one task serve the next without reallocating.
    pub scratch: MiningScratch,
}

impl<'a> MiningContext<'a> {
    /// Creates a context with the default configuration.
    pub fn new(
        graph: &'a LocalGraph,
        params: MiningParams,
        sink: &'a mut dyn QuasiCliqueSink,
    ) -> Self {
        MiningContext {
            graph,
            params,
            config: PruneConfig::default(),
            sink,
            stats: MiningStats::new(),
            emulate_quick_omissions: false,
            cancel: CancelToken::never(),
            interrupted: false,
            scratch: MiningScratch::default(),
        }
    }

    /// Creates a context with an explicit pruning configuration.
    pub fn with_config(
        graph: &'a LocalGraph,
        params: MiningParams,
        config: PruneConfig,
        sink: &'a mut dyn QuasiCliqueSink,
    ) -> Self {
        MiningContext {
            graph,
            params,
            config,
            sink,
            stats: MiningStats::new(),
            emulate_quick_omissions: false,
            cancel: CancelToken::never(),
            interrupted: false,
            scratch: MiningScratch::default(),
        }
    }

    /// True if this mining invocation should unwind early. Records the
    /// observation in [`MiningContext::interrupted`] so the driver can label
    /// the output as partial.
    #[inline]
    pub fn is_cancelled(&mut self) -> bool {
        if self.interrupted {
            return true;
        }
        if self.cancel.is_cancelled() {
            self.interrupted = true;
        }
        self.interrupted
    }

    /// Reports the candidate `s` (local indices) to the sink as global ids.
    pub fn report(&mut self, s: &[u32]) {
        let members = s.iter().map(|&v| self.graph.global_id(v)).collect();
        self.sink.report(members);
        self.stats.results_reported += 1;
    }

    /// Checks whether `G(S)` is a valid quasi-clique (size threshold + degree
    /// + connectivity) and reports it if so. Returns true if it was reported.
    ///
    /// This is the "examine G(S)" action of Algorithm 1 lines 14–16 / 23–24
    /// and Algorithm 2 lines 14–16.
    pub fn report_if_valid(&mut self, s: &[u32]) -> bool {
        if s.len() >= self.params.min_size && is_quasi_clique_local(self.graph, s, &self.params) {
            self.report(s);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::QuasiCliqueSet;
    use qcm_graph::{Graph, VertexId};

    fn triangle_local() -> LocalGraph {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        let all: Vec<VertexId> = g.vertices().collect();
        LocalGraph::from_induced(&g, &all)
    }

    #[test]
    fn report_translates_local_to_global_ids() {
        let g = Graph::from_edges(6, [(3, 4), (4, 5), (5, 3)]).unwrap();
        // Induce only on {3, 4, 5} so local ids 0..3 map to globals 3..6.
        let vs: Vec<VertexId> = [3u32, 4, 5].iter().map(|&v| VertexId::new(v)).collect();
        let lg = LocalGraph::from_induced(&g, &vs);
        let mut sink = QuasiCliqueSet::new();
        let params = MiningParams::new(0.9, 2);
        let mut ctx = MiningContext::new(&lg, params, &mut sink);
        ctx.report(&[0, 2]);
        assert_eq!(ctx.stats.results_reported, 1);
        assert!(sink.contains(&[VertexId::new(3), VertexId::new(5)]));
    }

    #[test]
    fn report_if_valid_enforces_size_and_density() {
        let lg = triangle_local();
        let mut sink = QuasiCliqueSet::new();
        let params = MiningParams::new(0.9, 3);
        let mut ctx = MiningContext::new(&lg, params, &mut sink);
        assert!(!ctx.report_if_valid(&[0, 1])); // too small
        assert!(ctx.report_if_valid(&[0, 1, 2])); // triangle passes
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn with_config_uses_supplied_rules() {
        let lg = triangle_local();
        let mut sink = QuasiCliqueSet::new();
        let params = MiningParams::new(0.9, 2);
        let ctx = MiningContext::with_config(&lg, params, PruneConfig::none(), &mut sink);
        assert_eq!(ctx.config, PruneConfig::none());
        assert!(!ctx.emulate_quick_omissions);
    }
}
