//! Mining parameters and exact threshold arithmetic.
//!
//! Every pruning rule in the paper compares an integer degree against a
//! threshold of the form `⌈γ·x⌉` or `⌊d/γ⌋`. Computing those with `f64`
//! directly is dangerous: `0.9 * 10` is not exactly `9.0` in binary floating
//! point and a mis-rounded ceiling silently drops valid results or fails to
//! prune. [`Gamma`] therefore stores γ as an exact rational `num/den` and the
//! thresholds are computed with integer arithmetic only.

use std::fmt;

/// The minimum-degree ratio γ of the quasi-clique definition, stored as an
/// exact rational number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Gamma {
    num: u64,
    den: u64,
}

impl Gamma {
    /// Creates γ = `num/den`. Panics if `den == 0`, if the fraction is not in
    /// (0, 1], or if it cannot be reduced to fit.
    pub fn from_ratio(num: u64, den: u64) -> Self {
        assert!(den != 0, "gamma denominator must be non-zero");
        assert!(num != 0, "gamma must be > 0");
        assert!(num <= den, "gamma must be <= 1 (got {num}/{den})");
        let g = gcd(num, den);
        Gamma {
            num: num / g,
            den: den / g,
        }
    }

    /// Creates γ from a floating point value by rounding to the nearest
    /// 1/1,000,000. Values like `0.9`, `0.85`, `2.0/3.0` are represented
    /// exactly enough for any realistic graph size.
    pub fn new(value: f64) -> Self {
        assert!(
            value > 0.0 && value <= 1.0,
            "gamma must be in (0, 1], got {value}"
        );
        const DEN: u64 = 1_000_000;
        let num = (value * DEN as f64).round() as u64;
        Self::from_ratio(num.max(1), DEN)
    }

    /// γ as `f64` (for display and statistics only — never for thresholds).
    pub fn as_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// The exact reduced rational `(numerator, denominator)`. Because the
    /// fraction is always stored reduced, equal γ values return identical
    /// ratios — which makes this the canonical representation for cache keys
    /// and fingerprints.
    pub fn as_ratio(&self) -> (u64, u64) {
        (self.num, self.den)
    }

    /// Exact `⌈γ · x⌉`.
    #[inline]
    pub fn ceil_mul(&self, x: usize) -> usize {
        let prod = self.num as u128 * x as u128;
        prod.div_ceil(self.den as u128) as usize
    }

    /// Exact `⌊d / γ⌋` (used by the upper bound U_min, Eq. 2–3 of the paper).
    #[inline]
    pub fn floor_div(&self, d: usize) -> usize {
        let prod = d as u128 * self.den as u128;
        (prod / self.num as u128) as usize
    }

    /// True if γ ≥ 1/2, i.e. the diameter of any γ-quasi-clique is at most 2
    /// (Theorem 1 of [Pei et al. 2005], used by pruning rule P1). Below 1/2
    /// the two-hop restriction of the search space must be disabled.
    #[inline]
    pub fn diameter_two_applies(&self) -> bool {
        2 * self.num >= self.den
    }
}

impl fmt::Display for Gamma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_f64())
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// The user-facing mining parameters: the degree threshold γ and the minimum
/// result size τ_size (Definition 3 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MiningParams {
    /// Minimum degree ratio γ ∈ (0, 1].
    pub gamma: Gamma,
    /// Minimum number of vertices τ_size of a reported quasi-clique.
    pub min_size: usize,
}

impl MiningParams {
    /// Creates parameters from a floating-point γ and τ_size.
    ///
    /// # Panics
    /// Panics if γ ∉ (0, 1] or `min_size < 2` (single vertices and below are
    /// trivially quasi-cliques and never interesting, per Section 3.1).
    pub fn new(gamma: f64, min_size: usize) -> Self {
        assert!(min_size >= 2, "min_size must be at least 2, got {min_size}");
        MiningParams {
            gamma: Gamma::new(gamma),
            min_size,
        }
    }

    /// The degree threshold `k = ⌈γ·(τ_size − 1)⌉` of the size-threshold
    /// pruning rule (P2, Theorem 2): vertices of degree below `k` cannot be in
    /// any valid quasi-clique, so the graph can be shrunk to its k-core.
    #[inline]
    pub fn kcore_threshold(&self) -> usize {
        self.gamma.ceil_mul(self.min_size - 1)
    }

    /// Minimum degree required of every vertex inside a quasi-clique with `n`
    /// vertices: `⌈γ·(n − 1)⌉`.
    #[inline]
    pub fn required_degree(&self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.gamma.ceil_mul(n - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_exact_ceiling_for_common_values() {
        let g = Gamma::new(0.9);
        // ⌈0.9 * 10⌉ = 9 exactly (a classic f64 trap: 0.9*10 = 9.000000000000002).
        assert_eq!(g.ceil_mul(10), 9);
        assert_eq!(g.ceil_mul(0), 0);
        assert_eq!(g.ceil_mul(1), 1);
        assert_eq!(g.ceil_mul(17), 16); // 15.3 -> 16
        let g = Gamma::new(0.5);
        assert_eq!(g.ceil_mul(7), 4);
        assert_eq!(g.ceil_mul(8), 4);
        let g = Gamma::new(1.0);
        assert_eq!(g.ceil_mul(9), 9);
    }

    #[test]
    fn gamma_floor_division() {
        let g = Gamma::new(0.9);
        // ⌊9 / 0.9⌋ = 10.
        assert_eq!(g.floor_div(9), 10);
        assert_eq!(g.floor_div(8), 8); // 8.888.. -> 8
        let g = Gamma::from_ratio(2, 3);
        assert_eq!(g.floor_div(4), 6);
        assert_eq!(g.floor_div(5), 7); // 7.5 -> 7
    }

    #[test]
    fn gamma_from_ratio_reduces() {
        let g = Gamma::from_ratio(3, 6);
        assert_eq!(g, Gamma::from_ratio(1, 2));
        assert!((g.as_f64() - 0.5).abs() < 1e-12);
        assert_eq!(format!("{g}"), "0.5");
    }

    #[test]
    fn diameter_two_threshold() {
        assert!(Gamma::new(0.5).diameter_two_applies());
        assert!(Gamma::new(0.9).diameter_two_applies());
        assert!(Gamma::new(1.0).diameter_two_applies());
        assert!(!Gamma::new(0.49).diameter_two_applies());
        assert!(!Gamma::from_ratio(1, 3).diameter_two_applies());
    }

    #[test]
    #[should_panic(expected = "gamma must be in")]
    fn gamma_rejects_zero() {
        Gamma::new(0.0);
    }

    #[test]
    #[should_panic(expected = "gamma must be in")]
    fn gamma_rejects_above_one() {
        Gamma::new(1.2);
    }

    #[test]
    #[should_panic(expected = "<= 1")]
    fn gamma_ratio_rejects_above_one() {
        Gamma::from_ratio(5, 4);
    }

    #[test]
    fn mining_params_kcore_threshold_matches_paper() {
        // YouTube run in the paper: γ=0.9, τ_size=18 → k = ⌈0.9·17⌉ = 16.
        let p = MiningParams::new(0.9, 18);
        assert_eq!(p.kcore_threshold(), 16);
        // Amazon: γ=0.5, τ_size=12 → k = ⌈0.5·11⌉ = 6.
        let p = MiningParams::new(0.5, 12);
        assert_eq!(p.kcore_threshold(), 6);
    }

    #[test]
    fn required_degree_grows_with_size() {
        let p = MiningParams::new(0.8, 5);
        assert_eq!(p.required_degree(0), 0);
        assert_eq!(p.required_degree(1), 0);
        assert_eq!(p.required_degree(5), 4); // ⌈0.8·4⌉
        assert_eq!(p.required_degree(6), 4);
        assert_eq!(p.required_degree(11), 8);
    }

    #[test]
    #[should_panic(expected = "min_size")]
    fn mining_params_rejects_tiny_min_size() {
        MiningParams::new(0.9, 1);
    }
}
