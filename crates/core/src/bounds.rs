//! Upper and lower bounds on the number of extension vertices (P4, P5).
//!
//! Given a candidate `⟨S, ext(S)⟩`, the paper derives:
//!
//! * an **upper bound** `U_S` on how many vertices of `ext(S)` can be added to
//!   `S` simultaneously while still possibly forming a γ-quasi-clique
//!   (Eqs. 1–4, Figure 6), and
//! * a **lower bound** `L_S` on how many vertices *must* be added before every
//!   member of `S` can reach the required degree (Eqs. 6–8, Figure 7).
//!
//! Both bounds are tightened with Lemma 2, which compares the total degree
//! mass available from the top-`t` extension vertices against the mass a
//! γ-quasi-clique of size `|S| + t` would need. Failure to find a feasible
//! `t` is itself a pruning signal (Type II).

use crate::degrees::Degrees;
use crate::params::MiningParams;

/// Outcome of the upper-bound computation (Eq. 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpperBound {
    /// No feasible `t ∈ [1, U_min]` exists: every *strict* extension of `S` is
    /// pruned. `G(S)` itself remains a candidate and must still be examined
    /// (paper, discussion below Eq. 4).
    ExtensionsPruned,
    /// The tightened bound `U_S ≥ 1`.
    Bound(usize),
}

/// Outcome of the lower-bound computation (Eqs. 7–8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LowerBound {
    /// No feasible `t` exists: `S` *and* all its extensions are pruned
    /// (paper, discussion below Eqs. 7 and 8 — note this prunes `S` itself,
    /// unlike the upper-bound failure).
    AllPruned,
    /// The tightened bound `L_S ≥ 0`.
    Bound(usize),
}

/// Lemma 2 feasibility test: returns true if adding some `t`-subset of
/// `ext(S)` could still yield a γ-quasi-clique, judged by total degree mass.
///
/// `prefix_se_sum` must be `Σ_{i=1..t} d_S(u_i)` over the `t` largest
/// SE-degrees.
#[inline]
fn lemma2_feasible(
    params: &MiningParams,
    s_len: usize,
    sum_ss: usize,
    prefix_se_sum: usize,
    t: usize,
) -> bool {
    // Σ_{v∈S} d_S(v) + Σ_{i≤t} d_S(u_i) ≥ |S| · ⌈γ(|S| + t − 1)⌉
    sum_ss + prefix_se_sum >= s_len * params.gamma.ceil_mul(s_len + t - 1)
}

/// Computes the tightened upper bound `U_S` (Eqs. 1–4).
///
/// Returns [`UpperBound::ExtensionsPruned`] when no feasible `t` exists.
/// For an empty `S` the bound degenerates to `|ext(S)|` (no constraint yet).
pub fn upper_bound(params: &MiningParams, degrees: &Degrees, ext_len: usize) -> UpperBound {
    let s_len = degrees.s_in_s.len();
    if s_len == 0 {
        return if ext_len == 0 {
            UpperBound::ExtensionsPruned
        } else {
            UpperBound::Bound(ext_len)
        };
    }
    let Some(dmin) = degrees.dmin() else {
        return UpperBound::ExtensionsPruned;
    };
    // Eq. 3: U_min = ⌊d_min / γ⌋ + 1 − |S|, capped by |ext(S)|.
    let budget = params.gamma.floor_div(dmin) + 1;
    if budget <= s_len {
        // Not even one extension vertex fits.
        return UpperBound::ExtensionsPruned;
    }
    let u_min = (budget - s_len).min(ext_len);
    if u_min == 0 {
        return UpperBound::ExtensionsPruned;
    }
    // Eq. 4: largest t ∈ [1, U_min] passing the Lemma 2 mass test.
    let sorted_se = degrees.sorted_ext_in_s_desc();
    let sum_ss = degrees.sum_s_in_s();
    let mut prefix = 0usize;
    let mut best: Option<usize> = None;
    for t in 1..=u_min {
        prefix += sorted_se[t - 1] as usize;
        if lemma2_feasible(params, s_len, sum_ss, prefix, t) {
            best = Some(t);
        }
    }
    match best {
        Some(t) => UpperBound::Bound(t),
        None => UpperBound::ExtensionsPruned,
    }
}

/// Computes the tightened lower bound `L_S` (Eqs. 6–8).
///
/// Returns [`LowerBound::AllPruned`] when no feasible `t` exists (then neither
/// `S` nor any extension can be a γ-quasi-clique). For an empty `S` the bound
/// is trivially 0.
pub fn lower_bound(params: &MiningParams, degrees: &Degrees, ext_len: usize) -> LowerBound {
    let s_len = degrees.s_in_s.len();
    if s_len == 0 {
        return LowerBound::Bound(0);
    }
    let Some(dmin_s) = degrees.dmin_s() else {
        return LowerBound::Bound(0);
    };
    // Eq. 7: smallest t with d_min^S + t ≥ ⌈γ(|S| + t − 1)⌉, t ∈ [0, |ext|].
    let mut l_min: Option<usize> = None;
    for t in 0..=ext_len {
        if dmin_s + t >= params.gamma.ceil_mul(s_len + t - 1) {
            l_min = Some(t);
            break;
        }
    }
    let Some(l_min) = l_min else {
        return LowerBound::AllPruned;
    };
    if l_min == 0 {
        // S already satisfies every member's degree requirement; the Lemma 2
        // refinement can only ask for ≥ 0 extra vertices, and t = 0 trivially
        // passes the mass test when every d_S(v) ≥ ⌈γ(|S|−1)⌉.
        return LowerBound::Bound(0);
    }
    // Eq. 8: smallest t ∈ [L_min, |ext|] passing the Lemma 2 mass test.
    let sorted_se = degrees.sorted_ext_in_s_desc();
    let sum_ss = degrees.sum_s_in_s();
    let mut prefix: usize = sorted_se.iter().take(l_min).map(|&d| d as usize).sum();
    for t in l_min..=ext_len {
        if t > l_min {
            prefix += sorted_se[t - 1] as usize;
        }
        if lemma2_feasible(params, s_len, sum_ss, prefix, t) {
            return LowerBound::Bound(t);
        }
    }
    LowerBound::AllPruned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degrees::compute_degrees;
    use qcm_graph::{Graph, LocalGraph, VertexId};

    fn figure4_local() -> LocalGraph {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5),
            (5, 6),
            (2, 6),
            (3, 7),
            (7, 8),
            (3, 8),
        ];
        let g = Graph::from_edges(9, edges.iter().copied()).unwrap();
        let all: Vec<VertexId> = g.vertices().collect();
        LocalGraph::from_induced(&g, &all)
    }

    #[test]
    fn upper_bound_on_dense_candidate() {
        let g = figure4_local();
        // S = {a} with ext = {b, c, d, e}: a is adjacent to all of them.
        let params = MiningParams::new(0.6, 2);
        let (deg, _) = compute_degrees(&g, &[0], &[1, 2, 3, 4]);
        // d_min = 0 + 4 = 4; U_min = ⌊4/0.6⌋ + 1 − 1 = 6 → capped at 4.
        // Mass test passes for t up to 4 (the subgraph is nearly complete).
        assert_eq!(upper_bound(&params, &deg, 4), UpperBound::Bound(4));
    }

    #[test]
    fn upper_bound_prunes_when_budget_exhausted() {
        let g = figure4_local();
        // S = {f, g} (an edge) with ext = {}: d_min = 1, γ = 0.9.
        // U_min = ⌊1/0.9⌋ + 1 − 2 = 0 → extensions pruned.
        let params = MiningParams::new(0.9, 2);
        let (deg, _) = compute_degrees(&g, &[5, 6], &[]);
        assert_eq!(upper_bound(&params, &deg, 0), UpperBound::ExtensionsPruned);
    }

    #[test]
    fn upper_bound_allows_full_extension_of_a_triangle_seed() {
        // S = {d} and ext = {h, i} in Figure 4: {d, h, i} is a triangle, so
        // with γ = 1.0 both extension vertices can be added simultaneously:
        // d_min = 2, U_min = ⌊2/1⌋ + 1 − 1 = 2, and the Lemma 2 mass test
        // passes for t = 1 and t = 2.
        let g = figure4_local();
        let params = MiningParams::new(1.0, 2);
        let (deg, _) = compute_degrees(&g, &[3], &[7, 8]);
        assert_eq!(upper_bound(&params, &deg, 2), UpperBound::Bound(2));
    }

    #[test]
    fn upper_bound_mass_test_tightens_below_umin() {
        // A star: center 0 adjacent to 1..4, leaves not adjacent to each
        // other. S = {0}, ext = {1, 2, 3, 4}, γ = 0.8.
        // d_min = 4 → U_min = ⌊4/0.8⌋ + 1 − 1 = 5 → capped at 4.
        // Every SE-degree is 1, so the mass test needs
        // t ≥ ⌈0.8·t⌉ … which holds only while ⌈0.8·t⌉ ≤ t, i.e. all t; but
        // the required mass is |S|·⌈γ(|S|+t−1)⌉ = ⌈0.8·t⌉ and the available
        // mass is exactly t, so t = 4 requires ⌈3.2⌉ = 4 ≤ 4 → passes, while a
        // sparser star (γ = 1.0) fails beyond t = 1.
        let star = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let all: Vec<VertexId> = star.vertices().collect();
        let lg = LocalGraph::from_induced(&star, &all);
        let strict = MiningParams::new(1.0, 2);
        let (deg, _) = compute_degrees(&lg, &[0], &[1, 2, 3, 4]);
        // With γ = 1.0: U_min = 4 but the mass test only passes t = 1
        // (t = 2 would need mass 2·1 = 2 from S-degrees of leaves, available 2;
        //  wait — available is exactly t, required is ⌈1.0·t⌉ = t, so every t
        //  passes the mass test; the *Type-I/II* rules are what kill the star.
        //  The tightening shows up with sum over |S| > 1 below.)
        assert_eq!(upper_bound(&strict, &deg, 4), UpperBound::Bound(4));

        // Two-vertex S inside the star: S = {0, 1} (an edge), ext = {2, 3, 4}.
        // d_S(0) = 1, d_S(1) = 1, sum_ss = 2; SE-degrees of 2, 3, 4 are 1 each
        // (adjacent to 0 only). γ = 1.0: required mass for t is
        // 2·⌈1.0·(t+1)⌉ = 2t + 2; available is 2 + t → only t ≤ 0 works, so no
        // t ∈ [1, U_min] passes and extensions are pruned.
        let (deg, _) = compute_degrees(&lg, &[0, 1], &[2, 3, 4]);
        assert_eq!(upper_bound(&strict, &deg, 3), UpperBound::ExtensionsPruned);
    }

    #[test]
    fn upper_bound_empty_s_is_unconstrained() {
        let g = figure4_local();
        let params = MiningParams::new(0.9, 2);
        let (deg, _) = compute_degrees(&g, &[], &[0, 1, 2]);
        assert_eq!(upper_bound(&params, &deg, 3), UpperBound::Bound(3));
        let (deg, _) = compute_degrees(&g, &[], &[]);
        assert_eq!(upper_bound(&params, &deg, 0), UpperBound::ExtensionsPruned);
    }

    #[test]
    fn lower_bound_zero_when_s_already_feasible() {
        let g = figure4_local();
        // S = {a, b, c} is a triangle; γ = 0.5 requires degree ⌈0.5·2⌉ = 1,
        // which every member already has → L_S = 0.
        let params = MiningParams::new(0.5, 2);
        let (deg, _) = compute_degrees(&g, &[0, 1, 2], &[3, 4]);
        assert_eq!(lower_bound(&params, &deg, 2), LowerBound::Bound(0));
    }

    #[test]
    fn lower_bound_requires_additions_for_sparse_s() {
        let g = figure4_local();
        // S = {b, d}: not adjacent (d_S = 0 for both). γ = 0.5.
        // L_min: smallest t with 0 + t ≥ ⌈0.5(2 + t − 1)⌉ → t = 1.
        // Mass test at t=1: sum_ss=0, best SE-degree is 2 (a or c or e adjacent
        // to both b and d? a is adjacent to b and d → d_S(a)=2). Need
        // 0 + 2 ≥ 2·⌈0.5·2⌉ = 2 → holds, so L_S = 1.
        let params = MiningParams::new(0.5, 2);
        let (deg, _) = compute_degrees(&g, &[1, 3], &[0, 2, 4]);
        assert_eq!(lower_bound(&params, &deg, 3), LowerBound::Bound(1));
    }

    #[test]
    fn lower_bound_prunes_when_infeasible() {
        let g = figure4_local();
        // S = {f, i}: far apart, no common neighborhood inside a tiny ext.
        // With γ = 1.0 every member of a quasi-clique of size 2 + t needs
        // degree 1 + t; f and i are not adjacent and ext = {} so no t works.
        let params = MiningParams::new(1.0, 2);
        let (deg, _) = compute_degrees(&g, &[5, 8], &[]);
        assert_eq!(lower_bound(&params, &deg, 0), LowerBound::AllPruned);
    }

    #[test]
    fn lower_bound_mass_test_can_fail_after_lmin() {
        // S = {b, d} with γ = 1.0: L_min needs t with 0 + t ≥ 1 + t, which
        // never holds → AllPruned straight from Eq. 7.
        let g = figure4_local();
        let params = MiningParams::new(1.0, 2);
        let (deg, _) = compute_degrees(&g, &[1, 3], &[0, 2, 4]);
        assert_eq!(lower_bound(&params, &deg, 3), LowerBound::AllPruned);
    }

    #[test]
    fn lower_bound_empty_s() {
        let g = figure4_local();
        let params = MiningParams::new(0.9, 2);
        let (deg, _) = compute_degrees(&g, &[], &[0, 1]);
        assert_eq!(lower_bound(&params, &deg, 2), LowerBound::Bound(0));
    }
}
