//! The zero-allocation mining scratch arena.
//!
//! Every node of the set-enumeration tree used to allocate several fresh
//! `Vec<u32>`s (branch list, lookahead candidate, `S'`, `ext(S')`, degree
//! vectors, the Type-I survivor list) and fresh [`VertexBitSet`]s (the
//! membership table, two-hop neighborhoods). On dense workloads where each
//! node does little other work, the allocator became the dominant residual
//! cost once edge queries were made cheap by the hub index. [`MiningScratch`]
//! removes it: a pool of reusable frames owned by
//! [`crate::MiningContext`], borrowed for the duration of one tree node and
//! returned on exit.
//!
//! The pool follows the recursion's LIFO discipline, so it grows
//! monotonically with the deepest recursion seen and is then reused for every
//! subsequent node and — because the serial driver and the engine workers
//! keep one arena alive across tasks — for every subsequent task. In steady
//! state a tree node performs **zero** heap allocations; the always-on
//! counters `allocations_avoided` / `scratch_fresh_allocs` in
//! [`qcm_graph::neighborhoods::perf`] make that verifiable from a benchmark
//! report.
//!
//! [`ScratchMode::Fresh`] turns the pool off: every take allocates and every
//! put drops, reproducing the pre-arena allocation behaviour. The benchmark
//! suite uses it as the within-binary baseline, and the property tests assert
//! the two modes return byte-identical result sets.

use crate::degrees::{Degrees, MembershipTable};
use qcm_graph::bitset::VertexBitSet;
use qcm_graph::neighborhoods::perf;

/// Whether scratch frames are pooled (the optimisation) or freshly allocated
/// per request (the reference behaviour the pool is benchmarked against).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScratchMode {
    /// Reuse frames across tree nodes and tasks (zero allocations in steady
    /// state).
    #[default]
    Pooled,
    /// Allocate every frame fresh, mirroring the pre-arena hot path. Used as
    /// the benchmark baseline and the equivalence-test reference.
    Fresh,
}

/// A depth-growing pool of reusable mining buffers.
///
/// Frames are taken at the top of a tree node and put back on exit; the
/// recursion's LIFO order means the pool's high-water mark tracks the deepest
/// node, after which every request is served without touching the heap.
#[derive(Debug, Default)]
pub struct MiningScratch {
    mode: ScratchMode,
    vecs: Vec<Vec<u32>>,
    bitsets: Vec<VertexBitSet>,
    degrees: Vec<Degrees>,
    memberships: Vec<MembershipTable>,
    /// Bytes resident in the pools right now (parked frames only).
    pooled_bytes: u64,
}

impl MiningScratch {
    /// Creates an empty arena in the given mode.
    pub fn new(mode: ScratchMode) -> Self {
        MiningScratch {
            mode,
            ..Default::default()
        }
    }

    /// An empty pooled arena (the default).
    pub fn pooled() -> Self {
        Self::new(ScratchMode::Pooled)
    }

    /// An arena that never pools — every take allocates, every put drops.
    pub fn fresh() -> Self {
        Self::new(ScratchMode::Fresh)
    }

    /// The arena's mode.
    pub fn mode(&self) -> ScratchMode {
        self.mode
    }

    /// Bytes currently parked in the pools.
    pub fn pooled_bytes(&self) -> u64 {
        self.pooled_bytes
    }

    /// Borrows an empty `u32` buffer.
    #[inline]
    pub fn take_vec(&mut self) -> Vec<u32> {
        match self.vecs.pop() {
            Some(v) => {
                debug_assert!(v.is_empty());
                self.pooled_bytes -= vec_bytes(&v);
                perf::count_allocations_avoided(1);
                v
            }
            None => {
                perf::count_scratch_fresh_allocs(1);
                Vec::new()
            }
        }
    }

    /// Borrows an empty `u32` buffer with at least `cap` capacity.
    #[inline]
    pub fn take_vec_cap(&mut self, cap: usize) -> Vec<u32> {
        match self.vecs.pop() {
            Some(mut v) => {
                debug_assert!(v.is_empty());
                self.pooled_bytes -= vec_bytes(&v);
                v.reserve(cap);
                perf::count_allocations_avoided(1);
                v
            }
            None => {
                perf::count_scratch_fresh_allocs(1);
                Vec::with_capacity(cap)
            }
        }
    }

    /// Returns a `u32` buffer to the pool (cleared here).
    #[inline]
    pub fn put_vec(&mut self, mut v: Vec<u32>) {
        if self.mode == ScratchMode::Fresh {
            return;
        }
        v.clear();
        self.park(vec_bytes(&v));
        self.vecs.push(v);
    }

    /// Borrows a cleared bitset of exactly `capacity` id slots.
    #[inline]
    pub fn take_bitset(&mut self, capacity: usize) -> VertexBitSet {
        match self.bitsets.pop() {
            Some(mut b) => {
                self.pooled_bytes -= b.memory_bytes() as u64;
                b.reset(capacity);
                perf::count_allocations_avoided(1);
                b
            }
            None => {
                perf::count_scratch_fresh_allocs(1);
                VertexBitSet::new(capacity)
            }
        }
    }

    /// Returns a bitset to the pool.
    #[inline]
    pub fn put_bitset(&mut self, b: VertexBitSet) {
        if self.mode == ScratchMode::Fresh {
            return;
        }
        self.park(b.memory_bytes() as u64);
        self.bitsets.push(b);
    }

    /// Borrows a cleared degree-vector frame.
    #[inline]
    pub fn take_degrees(&mut self) -> Degrees {
        match self.degrees.pop() {
            Some(d) => {
                self.pooled_bytes -= degrees_bytes(&d);
                perf::count_allocations_avoided(1);
                d
            }
            None => {
                perf::count_scratch_fresh_allocs(1);
                Degrees::empty()
            }
        }
    }

    /// Returns a degree frame to the pool (cleared here).
    #[inline]
    pub fn put_degrees(&mut self, mut d: Degrees) {
        if self.mode == ScratchMode::Fresh {
            return;
        }
        d.clear();
        self.park(degrees_bytes(&d));
        self.degrees.push(d);
    }

    /// Borrows an empty membership table able to address ids `0..capacity`.
    #[inline]
    pub fn take_membership(&mut self, capacity: usize) -> MembershipTable {
        match self.memberships.pop() {
            Some(mut m) => {
                self.pooled_bytes -= m.memory_bytes() as u64;
                m.reset(capacity);
                perf::count_allocations_avoided(1);
                m
            }
            None => {
                perf::count_scratch_fresh_allocs(1);
                MembershipTable::with_capacity(capacity)
            }
        }
    }

    /// Returns a membership table to the pool.
    #[inline]
    pub fn put_membership(&mut self, m: MembershipTable) {
        if self.mode == ScratchMode::Fresh {
            return;
        }
        self.park(m.memory_bytes() as u64);
        self.memberships.push(m);
    }

    #[inline]
    fn park(&mut self, bytes: u64) {
        self.pooled_bytes += bytes;
        perf::record_scratch_bytes(self.pooled_bytes);
    }
}

#[inline]
fn vec_bytes(v: &Vec<u32>) -> u64 {
    (v.capacity() * std::mem::size_of::<u32>()) as u64
}

#[inline]
fn degrees_bytes(d: &Degrees) -> u64 {
    ((d.s_in_s.capacity() + d.s_in_ext.capacity() + d.ext_in_s.capacity())
        * std::mem::size_of::<u32>()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_arena_reuses_buffers() {
        let mut scratch = MiningScratch::pooled();
        let mut v = scratch.take_vec();
        v.extend_from_slice(&[1, 2, 3]);
        let ptr = v.as_ptr();
        scratch.put_vec(v);
        let v2 = scratch.take_vec();
        assert!(v2.is_empty());
        assert_eq!(v2.as_ptr(), ptr, "the same buffer must come back");
        scratch.put_vec(v2);
        assert!(scratch.pooled_bytes() > 0);
    }

    #[test]
    fn fresh_mode_never_pools() {
        let mut scratch = MiningScratch::fresh();
        let mut v = scratch.take_vec();
        v.push(7);
        scratch.put_vec(v);
        assert_eq!(scratch.pooled_bytes(), 0);
        let v2 = scratch.take_vec();
        assert!(v2.is_empty() && v2.capacity() == 0);
    }

    #[test]
    fn bitsets_retarget_capacity_on_reuse() {
        let mut scratch = MiningScratch::pooled();
        let mut b = scratch.take_bitset(100);
        b.insert(99);
        scratch.put_bitset(b);
        let b2 = scratch.take_bitset(40);
        assert_eq!(b2.capacity(), 40);
        assert!(b2.is_empty(), "recycled bitset must come back cleared");
        let b3 = scratch.take_bitset(500);
        assert_eq!(b3.capacity(), 500);
        assert!(b3.is_empty());
    }

    #[test]
    fn degree_and_membership_frames_round_trip() {
        let mut scratch = MiningScratch::pooled();
        let mut d = scratch.take_degrees();
        d.s_in_s.push(3);
        scratch.put_degrees(d);
        let d2 = scratch.take_degrees();
        assert!(d2.s_in_s.is_empty() && d2.s_in_ext.is_empty() && d2.ext_in_s.is_empty());
        scratch.put_degrees(d2);

        let mut m = scratch.take_membership(16);
        m.insert_s(3);
        scratch.put_membership(m);
        let m2 = scratch.take_membership(32);
        assert_eq!(m2.get(3), crate::degrees::Membership::Neither);
        scratch.put_membership(m2);
    }
}
