//! Critical-vertex pruning (P6, Definition 4 and Theorem 9).
//!
//! A vertex `v ∈ S` is *critical* when `d_S(v) + d_ext(S)(v)` equals exactly
//! the degree that `v` will need in the smallest feasible extension,
//! `⌈γ·(|S| + L_S − 1)⌉`. In that case every γ-quasi-clique strictly extending
//! `S` must contain *all* of `v`'s neighbors in `ext(S)` — so the miner can
//! move `Γ_ext(S)(v)` into `S` wholesale instead of branching on each of them.

use crate::degrees::Degrees;
use crate::params::MiningParams;
use qcm_graph::LocalGraph;

/// Collects `Γ_ext(S)(v)` — the extension vertices a critical vertex `v`
/// forces into `S` (Theorem 9) — into a scratch-provided buffer (cleared
/// first), preserving `ext` order. The allocation-free counterpart of the
/// `filter(...).collect()` the bounding loop used to perform per move.
pub fn collect_critical_moves(g: &LocalGraph, ext: &[u32], v: u32, moved_out: &mut Vec<u32>) {
    moved_out.clear();
    moved_out.extend(ext.iter().copied().filter(|&u| g.has_edge(u, v)));
}

/// Finds a critical vertex of `S`, if any.
///
/// Returns the position (index into the `s` slice that produced `degrees`) of
/// the first critical vertex, or `None`. `ls` is the lower bound `L_S`
/// computed by [`crate::bounds::lower_bound`].
pub fn find_critical_vertex(params: &MiningParams, degrees: &Degrees, ls: usize) -> Option<usize> {
    let s_len = degrees.s_in_s.len();
    if s_len == 0 {
        return None;
    }
    let needed = params.gamma.ceil_mul(s_len + ls - 1);
    (0..s_len).find(|&i| {
        let total = degrees.s_in_s[i] as usize + degrees.s_in_ext[i] as usize;
        total == needed
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{lower_bound, LowerBound};
    use crate::degrees::compute_degrees;
    use qcm_graph::{Graph, LocalGraph, VertexId};

    fn figure4_local() -> LocalGraph {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5),
            (5, 6),
            (2, 6),
            (3, 7),
            (7, 8),
            (3, 8),
        ];
        let g = Graph::from_edges(9, edges.iter().copied()).unwrap();
        let all: Vec<VertexId> = g.vertices().collect();
        LocalGraph::from_induced(&g, &all)
    }

    #[test]
    fn critical_vertex_when_budget_is_exact() {
        // Bespoke graph: S = {a, b} (not adjacent), ext = {c, d, e} where
        // c and d are adjacent to both a and b while e is adjacent to b only.
        //   a=0, b=1, c=2, d=3, e=4.
        // With γ = 0.6: L_min = 2 (two additions are needed before a and b can
        // reach ⌈0.6·(|S'|−1)⌉), and Eq. 8 confirms L_S = 2. The needed total
        // degree is ⌈0.6·(2 + 2 − 1)⌉ = 2, which vertex a meets *exactly*
        // (d_S(a) = 0, d_ext(a) = 2) → a is critical and every valid
        // extension must contain both of a's extension neighbors {c, d}.
        let g = Graph::from_edges(5, [(0, 2), (0, 3), (1, 2), (1, 3), (1, 4)]).unwrap();
        let all: Vec<VertexId> = g.vertices().collect();
        let lg = LocalGraph::from_induced(&g, &all);
        let params = MiningParams::new(0.6, 2);
        let (deg, _) = compute_degrees(&lg, &[0, 1], &[2, 3, 4]);
        let LowerBound::Bound(ls) = lower_bound(&params, &deg, 3) else {
            panic!("lower bound should be feasible");
        };
        assert_eq!(ls, 2);
        let critical = find_critical_vertex(&params, &deg, ls);
        // Position 0 in the s slice corresponds to vertex a.
        assert_eq!(critical, Some(0));
    }

    #[test]
    fn no_critical_vertex_when_slack_exists() {
        let g = figure4_local();
        // S = {a}, ext = {b, c, d, e}, γ = 0.5: a has 4 extension neighbors
        // but only needs ⌈0.5·(1 + L_S − 1)⌉ with L_S small — plenty of slack.
        let params = MiningParams::new(0.5, 2);
        let (deg, _) = compute_degrees(&g, &[0], &[1, 2, 3, 4]);
        let LowerBound::Bound(ls) = lower_bound(&params, &deg, 4) else {
            panic!("lower bound should be feasible");
        };
        assert_eq!(find_critical_vertex(&params, &deg, ls), None);
    }

    #[test]
    fn empty_s_has_no_critical_vertex() {
        let g = figure4_local();
        let params = MiningParams::new(0.9, 2);
        let (deg, _) = compute_degrees(&g, &[], &[0, 1]);
        assert_eq!(find_critical_vertex(&params, &deg, 0), None);
    }
}
