//! The stable, transport-independent service API vocabulary.
//!
//! The mining service is exposed over two wire surfaces — the versioned
//! HTTP/1.1 JSON API (`qcm-http`) and the deprecated `qcm serve` line
//! protocol — and both must agree on one machine-readable error taxonomy
//! and one set of request/response shapes. That shared vocabulary lives
//! here, *below* the service and transport crates, so the `qcm` facade can
//! re-export it and every layer (CLI exit codes, HTTP statuses, JSON error
//! bodies) maps from the same table.
//!
//! Nothing in this module performs I/O or serialisation; the DTOs are plain
//! data the transports render with their own (hand-rolled, offline-safe)
//! JSON encoders.

use std::fmt;

/// Stable, machine-readable error codes of the mining service API.
///
/// Every service-level failure maps to exactly one code; the code string is
/// part of the public API and never changes meaning once released. The enum
/// is `#[non_exhaustive]`: new codes may appear in later releases, so
/// clients must treat unknown codes as a generic failure of the transport's
/// status class.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The request itself is malformed: unparseable body, unknown field
    /// value, invalid mining parameters.
    BadRequest,
    /// The request head (request line + headers) exceeds the transport's
    /// size limits.
    HeadTooLarge,
    /// The declared request body exceeds the transport's size limit.
    BodyTooLarge,
    /// Recognisable protocol the transport deliberately does not speak
    /// (unknown method, `Transfer-Encoding`, unknown HTTP version).
    Unsupported,
    /// Missing or unknown tenant auth token.
    Unauthorized,
    /// No such route/resource on the HTTP surface, or an unknown verb on
    /// the line protocol.
    NotFound,
    /// No job with the requested id (never submitted, or already evicted
    /// from the finished-job retention window).
    UnknownJob,
    /// No graph registered under the requested name / loadable from the
    /// requested path.
    UnknownGraph,
    /// Admission control shed the job: the global queue is full. Retry
    /// after backing off — the `Retry-After` the HTTP surface attaches is
    /// [`ErrorCode::retry_after_secs`].
    Overloaded,
    /// Admission control shed the job: this tenant is over its unfinished-
    /// job quota. Other tenants are unaffected.
    QuotaExceeded,
    /// The job was cancelled while still queued and therefore has no
    /// result.
    JobCancelled,
    /// The job's mining run failed inside the engine.
    JobFailed,
    /// The service is draining and no longer accepts submissions.
    ShuttingDown,
    /// An unexpected transport- or service-internal failure.
    Internal,
}

/// One row of the shared code table: `(code, string, HTTP status, CLI exit
/// code)`.
///
/// This is *the* mapping both wire surfaces use — the HTTP listener picks
/// column 3, the CLI picks column 4, and both emit column 2 in their JSON
/// error bodies — so the taxonomy cannot drift between transports.
pub const ERROR_CODE_TABLE: &[(ErrorCode, &str, u16, u8)] = &[
    (ErrorCode::BadRequest, "bad_request", 400, 2),
    (ErrorCode::HeadTooLarge, "head_too_large", 431, 2),
    (ErrorCode::BodyTooLarge, "body_too_large", 413, 2),
    (ErrorCode::Unsupported, "unsupported", 501, 2),
    (ErrorCode::Unauthorized, "unauthorized", 401, 2),
    (ErrorCode::NotFound, "not_found", 404, 1),
    (ErrorCode::UnknownJob, "unknown_job", 404, 1),
    (ErrorCode::UnknownGraph, "unknown_graph", 404, 1),
    (ErrorCode::Overloaded, "overloaded", 429, 3),
    (ErrorCode::QuotaExceeded, "quota_exceeded", 429, 3),
    (ErrorCode::JobCancelled, "job_cancelled", 409, 1),
    (ErrorCode::JobFailed, "job_failed", 500, 1),
    (ErrorCode::ShuttingDown, "shutting_down", 503, 3),
    (ErrorCode::Internal, "internal", 500, 1),
];

impl ErrorCode {
    fn row(self) -> &'static (ErrorCode, &'static str, u16, u8) {
        ERROR_CODE_TABLE
            .iter()
            .find(|(code, ..)| *code == self)
            .unwrap_or(&ERROR_CODE_TABLE[ERROR_CODE_TABLE.len() - 1])
    }

    /// The stable wire string (`"overloaded"`, `"unknown_job"`, …).
    pub fn as_str(self) -> &'static str {
        self.row().1
    }

    /// The HTTP status the versioned API answers with.
    pub fn http_status(self) -> u16 {
        self.row().2
    }

    /// The process exit code the CLI maps a terminal failure to. `2` is
    /// caller misconfiguration, `1` runtime failure, `3` "retry later"
    /// (overload / quota / shutdown) so scripts can distinguish shed load
    /// from hard errors.
    pub fn cli_exit_code(self) -> u8 {
        self.row().3
    }

    /// The back-off hint (seconds) attached as `Retry-After` to shed
    /// requests, `None` for codes that are not retryable-by-waiting.
    pub fn retry_after_secs(self) -> Option<u64> {
        match self {
            ErrorCode::Overloaded | ErrorCode::QuotaExceeded => Some(1),
            ErrorCode::ShuttingDown => Some(5),
            _ => None,
        }
    }

    /// Parses the stable wire string back into its code.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        ERROR_CODE_TABLE
            .iter()
            .find(|(_, name, ..)| *name == s)
            .map(|(code, ..)| *code)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A transport-independent API error: a stable code plus a human-readable
/// message. This is the `{"error":{"code":…,"message":…}}` body both wire
/// surfaces emit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApiError {
    /// The stable machine-readable code.
    pub code: ErrorCode,
    /// Human-readable diagnostic (free-form, never parsed by clients).
    pub message: String,
}

impl ApiError {
    /// A new error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ApiError {
            code,
            message: message.into(),
        }
    }

    /// Shorthand for [`ErrorCode::BadRequest`].
    pub fn bad_request(message: impl Into<String>) -> Self {
        ApiError::new(ErrorCode::BadRequest, message)
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ApiError {}

/// Job-submission request DTO (`POST /v1/jobs` body; `submit` verb of the
/// line protocol). Field names match the JSON wire format one-to-one.
#[derive(Clone, Debug, PartialEq)]
pub struct SubmitRequest {
    /// Graph reference: a name registered via `PUT /v1/graphs/{name}`, or a
    /// server-local file path (edge list or `QCMGRPH` binary snapshot).
    pub graph: String,
    /// Minimum degree ratio γ.
    pub gamma: f64,
    /// Minimum quasi-clique size τ_size.
    pub min_size: usize,
    /// Scheduling priority: `"low"` / `"normal"` / `"high"`.
    pub priority: String,
    /// Optional per-job execution deadline in milliseconds.
    pub deadline_ms: Option<u64>,
}

impl SubmitRequest {
    /// A request with the default priority and no deadline.
    pub fn new(graph: impl Into<String>, gamma: f64, min_size: usize) -> Self {
        SubmitRequest {
            graph: graph.into(),
            gamma,
            min_size,
            priority: "normal".to_string(),
            deadline_ms: None,
        }
    }
}

/// Job-submission response DTO (`202 Accepted` body).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubmitResponse {
    /// The issued job id.
    pub job: u64,
    /// Lifecycle state right after submission (`"queued"`, or `"completed"`
    /// for a cache hit).
    pub status: String,
    /// True when the answer was served from the result cache at submit.
    pub cache_hit: bool,
}

/// Job status / result DTO (`GET /v1/jobs/{id}` body; also the line
/// protocol's `status` / `fetch` responses). Result fields are `None`
/// until the job reaches a terminal state with a result.
#[derive(Clone, Debug, PartialEq)]
pub struct JobView {
    /// The job id.
    pub job: u64,
    /// Lifecycle state (`"queued"`, `"running"`, `"completed"`,
    /// `"cancelled"`, `"failed"`).
    pub status: String,
    /// Tenant the job is accounted against.
    pub tenant: String,
    /// How the run ended (`"complete"`, `"cancelled"`,
    /// `"deadline_exceeded"`, `"faulted"`); `None` while non-terminal.
    pub outcome: Option<String>,
    /// True when the terminal answer was served from the result cache.
    pub cache_hit: Option<bool>,
    /// Number of maximal quasi-cliques in the answer.
    pub num_maximal: Option<usize>,
    /// Raw candidate reports of the run.
    pub raw_reported: Option<u64>,
    /// Wall-clock milliseconds of the original mining run.
    pub mining_ms: Option<u64>,
}

/// Registered-graph DTO (`GET /v1/graphs` rows; `PUT /v1/graphs/{name}`
/// response).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphInfo {
    /// Registry name (or the load path for path-loaded graphs).
    pub name: String,
    /// Vertex count.
    pub num_vertices: usize,
    /// Edge count.
    pub num_edges: usize,
    /// Stable content hash ([`crate::QueryKey`]'s graph component).
    pub fingerprint: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_code_roundtrips_through_the_table() {
        for &(code, name, status, exit) in ERROR_CODE_TABLE {
            assert_eq!(code.as_str(), name);
            assert_eq!(code.http_status(), status);
            assert_eq!(code.cli_exit_code(), exit);
            assert_eq!(ErrorCode::parse(name), Some(code));
        }
        assert_eq!(ErrorCode::parse("no_such_code"), None);
    }

    #[test]
    fn shed_codes_carry_retry_after() {
        assert!(ErrorCode::Overloaded.retry_after_secs().is_some());
        assert!(ErrorCode::QuotaExceeded.retry_after_secs().is_some());
        assert!(ErrorCode::ShuttingDown.retry_after_secs().is_some());
        assert_eq!(ErrorCode::BadRequest.retry_after_secs(), None);
        assert_eq!(ErrorCode::UnknownJob.retry_after_secs(), None);
    }

    #[test]
    fn shed_codes_map_to_429() {
        assert_eq!(ErrorCode::Overloaded.http_status(), 429);
        assert_eq!(ErrorCode::QuotaExceeded.http_status(), 429);
        assert_eq!(ErrorCode::Overloaded.cli_exit_code(), 3);
    }

    #[test]
    fn api_error_displays_code_and_message() {
        let err = ApiError::new(ErrorCode::UnknownJob, "job 7");
        assert_eq!(err.to_string(), "unknown_job: job 7");
        assert_eq!(ApiError::bad_request("x").code, ErrorCode::BadRequest);
    }

    #[test]
    fn submit_request_defaults() {
        let req = SubmitRequest::new("enron", 0.9, 10);
        assert_eq!(req.priority, "normal");
        assert_eq!(req.deadline_ms, None);
    }
}
