//! Pruning-rule configuration.
//!
//! Every pruning family of the paper (P1–P7 plus the lookahead of Algorithm 2)
//! can be toggled independently. The default enables everything — that is the
//! paper's proposed algorithm — while the ablation benchmark
//! (`ablation_pruning_rules`) switches rules off one at a time to reproduce
//! the paper's claims about their effectiveness (e.g. the lower-bound pruning
//! that Quick's authors report speeds mining up by 192×, and the k-core
//! preprocessing the paper identifies as "a dominating factor to scale beyond
//! a small graph").

/// Which pruning rules the miner applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PruneConfig {
    /// P1: diameter-based restriction of `ext(S)` to two-hop neighborhoods
    /// (only applied when γ ≥ 0.5).
    pub diameter: bool,
    /// P2: size-threshold (k-core) preprocessing of the input graph.
    pub size_threshold: bool,
    /// P3: degree-based Type-I/Type-II pruning (Theorems 3–4).
    pub degree: bool,
    /// P4: upper-bound based pruning (Theorems 5–6 and Eq. 4).
    pub upper_bound: bool,
    /// P5: lower-bound based pruning (Theorems 7–8 and Eqs. 7–8).
    pub lower_bound: bool,
    /// P6: critical-vertex pruning (Theorem 9).
    pub critical_vertex: bool,
    /// P7: cover-vertex pruning (Eq. 9).
    pub cover_vertex: bool,
    /// The lookahead of Algorithm 2 lines 8–10 (output `S ∪ ext(S)` directly
    /// when it already is a quasi-clique).
    pub lookahead: bool,
}

impl Default for PruneConfig {
    fn default() -> Self {
        Self::all_enabled()
    }
}

impl PruneConfig {
    /// The paper's full algorithm: every rule on.
    pub const fn all_enabled() -> Self {
        PruneConfig {
            diameter: true,
            size_threshold: true,
            degree: true,
            upper_bound: true,
            lower_bound: true,
            critical_vertex: true,
            cover_vertex: true,
            lookahead: true,
        }
    }

    /// Baseline with every optional rule off (only the definition checks
    /// remain). Exponentially slower; used by tests on tiny graphs to confirm
    /// that pruning does not change the result set.
    pub const fn none() -> Self {
        PruneConfig {
            diameter: false,
            size_threshold: false,
            degree: false,
            upper_bound: false,
            lower_bound: false,
            critical_vertex: false,
            cover_vertex: false,
            lookahead: false,
        }
    }

    /// Returns a copy with the named rule disabled. Rule names match the
    /// field names; unknown names panic (they indicate a typo in a benchmark).
    pub fn without(mut self, rule: &str) -> Self {
        match rule {
            "diameter" => self.diameter = false,
            "size_threshold" => self.size_threshold = false,
            "degree" => self.degree = false,
            "upper_bound" => self.upper_bound = false,
            "lower_bound" => self.lower_bound = false,
            "critical_vertex" => self.critical_vertex = false,
            "cover_vertex" => self.cover_vertex = false,
            "lookahead" => self.lookahead = false,
            other => panic!("unknown pruning rule name: {other}"),
        }
        self
    }

    /// Names of all toggleable rules (used by the ablation benchmark to sweep).
    pub fn rule_names() -> &'static [&'static str] {
        &[
            "diameter",
            "size_threshold",
            "degree",
            "upper_bound",
            "lower_bound",
            "critical_vertex",
            "cover_vertex",
            "lookahead",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_everything() {
        let c = PruneConfig::default();
        assert_eq!(c, PruneConfig::all_enabled());
        assert!(c.diameter && c.size_threshold && c.degree && c.upper_bound);
        assert!(c.lower_bound && c.critical_vertex && c.cover_vertex && c.lookahead);
    }

    #[test]
    fn none_disables_everything() {
        let c = PruneConfig::none();
        assert!(!c.diameter && !c.size_threshold && !c.degree && !c.upper_bound);
        assert!(!c.lower_bound && !c.critical_vertex && !c.cover_vertex && !c.lookahead);
    }

    #[test]
    fn without_disables_single_rule() {
        for &name in PruneConfig::rule_names() {
            let c = PruneConfig::all_enabled().without(name);
            assert_ne!(
                c,
                PruneConfig::all_enabled(),
                "rule {name} was not disabled"
            );
        }
        let c = PruneConfig::all_enabled().without("lower_bound");
        assert!(!c.lower_bound);
        assert!(c.upper_bound);
    }

    #[test]
    #[should_panic(expected = "unknown pruning rule")]
    fn without_rejects_typos() {
        PruneConfig::all_enabled().without("lowerbound");
    }
}
