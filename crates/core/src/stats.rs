//! Mining statistics and pruning-rule counters.
//!
//! The counters are used by tests (to assert that a rule actually fired), by
//! the ablation benchmark, and by the experiment harness to report workload
//! characteristics (e.g. the number of set-enumeration nodes expanded, which
//! is the machine-independent proxy for "mining workload" used when comparing
//! against the paper's shapes).

/// Counters accumulated while mining. All counters are plain `u64`s so a
/// stats object can be cheaply merged across tasks and threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MiningStats {
    /// Number of set-enumeration tree nodes expanded (calls considering some
    /// `S' = S ∪ {v}`).
    pub nodes_expanded: u64,
    /// Number of candidate sets reported to the sink (before the maximality
    /// post-processing).
    pub results_reported: u64,
    /// Vertices removed from `ext(S)` by Type-I rules (Theorems 3, 5, 7).
    pub type1_pruned: u64,
    /// Subtrees pruned by Type-II rules (Theorems 4, 6, 8 and bound failures).
    pub type2_pruned: u64,
    /// Successful lookahead shortcuts (Algorithm 2, lines 8–10).
    pub lookahead_hits: u64,
    /// Vertices moved from `ext(S)` into `S` by critical-vertex pruning.
    pub critical_moves: u64,
    /// Vertices skipped thanks to cover-vertex pruning (the tail `C_S(u)` that
    /// the extension loop never visits).
    pub cover_skipped: u64,
    /// Vertices removed by the k-core preprocessing (P2).
    pub kcore_removed: u64,
    /// Iterations of the iterative-bounding loop (Algorithm 1 repeat rounds).
    pub bounding_rounds: u64,
    /// Number of mining tasks processed (1 for a purely serial run; one per
    /// spawned/decomposed task in the parallel engine).
    pub tasks_processed: u64,
}

impl MiningStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds every counter of `other` into `self` (used when merging per-task
    /// or per-thread statistics).
    pub fn merge(&mut self, other: &MiningStats) {
        self.nodes_expanded += other.nodes_expanded;
        self.results_reported += other.results_reported;
        self.type1_pruned += other.type1_pruned;
        self.type2_pruned += other.type2_pruned;
        self.lookahead_hits += other.lookahead_hits;
        self.critical_moves += other.critical_moves;
        self.cover_skipped += other.cover_skipped;
        self.kcore_removed += other.kcore_removed;
        self.bounding_rounds += other.bounding_rounds;
        self.tasks_processed += other.tasks_processed;
    }

    /// Total number of pruning events across all rules — a coarse measure of
    /// how much work the rules saved.
    pub fn total_pruning_events(&self) -> u64 {
        self.type1_pruned
            + self.type2_pruned
            + self.lookahead_hits
            + self.critical_moves
            + self.cover_skipped
            + self.kcore_removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_stats_are_zeroed() {
        let s = MiningStats::new();
        assert_eq!(s, MiningStats::default());
        assert_eq!(s.total_pruning_events(), 0);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = MiningStats {
            nodes_expanded: 5,
            type1_pruned: 2,
            tasks_processed: 1,
            ..Default::default()
        };
        let b = MiningStats {
            nodes_expanded: 3,
            type2_pruned: 7,
            tasks_processed: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.nodes_expanded, 8);
        assert_eq!(a.type1_pruned, 2);
        assert_eq!(a.type2_pruned, 7);
        assert_eq!(a.tasks_processed, 3);
    }

    #[test]
    fn total_pruning_events_sums_rule_counters() {
        let s = MiningStats {
            type1_pruned: 1,
            type2_pruned: 2,
            lookahead_hits: 3,
            critical_moves: 4,
            cover_skipped: 5,
            kcore_removed: 6,
            nodes_expanded: 100, // not a pruning event
            ..Default::default()
        };
        assert_eq!(s.total_pruning_events(), 21);
    }
}
