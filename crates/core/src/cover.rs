//! Cover-vertex pruning (P7, Eq. 9).
//!
//! Given a candidate `⟨S, ext(S)⟩` and a vertex `u ∈ ext(S)`, the cover set
//! `C_S(u)` contains the extension vertices such that any quasi-clique built
//! from `S` using only vertices of `C_S(u)` could also absorb `u` — and would
//! therefore not be maximal. Algorithm 2 exploits this by moving `C_S(u)` to
//! the tail of the extension list and never using those vertices as the next
//! branching vertex. To maximise the saving, the `u` with the largest
//! `|C_S(u)|` is chosen.
//!
//! `C_S(u) = Γ_ext(S)(u) ∩ ⋂_{v ∈ S, v ∉ Γ(u)} Γ(v)`, and the pruning is only
//! applicable when `d_S(u) ≥ ⌈γ·|S|⌉` and every non-neighbor `v ∈ S` of `u`
//! has `d_S(v) ≥ ⌈γ·|S|⌉` (otherwise those vertices are already handled by
//! Theorems 3–4).

use crate::degrees::{compute_degrees_into, Membership};
use crate::params::MiningParams;
use crate::scratch::MiningScratch;
use qcm_graph::LocalGraph;

/// Result of the cover-vertex search.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoverVertex {
    /// The chosen cover vertex `u` (local index), if any applicable one exists.
    pub vertex: Option<u32>,
    /// The cover set `C_S(u)` (local indices, sorted). Empty when no cover
    /// vertex is applicable.
    pub covered: Vec<u32>,
}

/// Finds the cover vertex `u ∈ ext` with the largest `|C_S(u)|` (Eq. 9).
///
/// Mirrors the implementation note of Algorithm 2 line 2: while scanning
/// candidates, a vertex whose `|Γ_ext(S)(u)|` is already no larger than the
/// best cover found so far is skipped without evaluating the intersection.
pub fn find_cover_vertex(
    g: &LocalGraph,
    s: &[u32],
    ext: &[u32],
    params: &MiningParams,
) -> CoverVertex {
    let mut scratch = MiningScratch::fresh();
    let mut covered = Vec::new();
    let vertex = find_cover_vertex_into(g, s, ext, params, &mut scratch, &mut covered);
    CoverVertex { vertex, covered }
}

/// Scratch-pooled core of [`find_cover_vertex`]: writes the winning `C_S(u)`
/// (sorted) into `covered_out` (cleared first) and returns the chosen cover
/// vertex. Every intermediate buffer comes from — and goes back to — the
/// arena, so the per-tree-node call allocates nothing in steady state.
pub fn find_cover_vertex_into(
    g: &LocalGraph,
    s: &[u32],
    ext: &[u32],
    params: &MiningParams,
    scratch: &mut MiningScratch,
    covered_out: &mut Vec<u32>,
) -> Option<u32> {
    covered_out.clear();
    if ext.is_empty() {
        return None;
    }
    let mut degrees = scratch.take_degrees();
    let mut membership = scratch.take_membership(g.capacity());
    compute_degrees_into(g, s, ext, &mut degrees, &mut membership);
    let threshold = params.gamma.ceil_mul(s.len());
    let mut best_vertex = None;
    let mut gamma_ext_u = scratch.take_vec();
    let mut non_neighbors_in_s = scratch.take_vec();

    for (j, &u) in ext.iter().enumerate() {
        // Applicability: d_S(u) ≥ ⌈γ·|S|⌉.
        if (degrees.ext_in_s[j] as usize) < threshold {
            continue;
        }
        // Γ_ext(S)(u).
        gamma_ext_u.clear();
        gamma_ext_u.extend(
            g.neighbors(u)
                .filter(|&w| membership.get(w) == Membership::InExt),
        );
        // Cheap skip: the cover set can never exceed |Γ_ext(S)(u)|.
        if gamma_ext_u.len() <= covered_out.len() {
            continue;
        }
        // Applicability: every v ∈ S not adjacent to u must itself satisfy
        // d_S(v) ≥ ⌈γ·|S|⌉; collect those non-neighbors for the intersection.
        let mut applicable = true;
        non_neighbors_in_s.clear();
        for (i, &v) in s.iter().enumerate() {
            if !g.has_edge(u, v) {
                if (degrees.s_in_s[i] as usize) < threshold {
                    applicable = false;
                    break;
                }
                non_neighbors_in_s.push(v);
            }
        }
        if !applicable {
            continue;
        }
        // C_S(u) = Γ_ext(u) ∩ ⋂_{v ∈ non-neighbors} Γ(v), intersected in
        // place — the buffer is rebuilt for the next candidate anyway.
        for &v in &non_neighbors_in_s {
            gamma_ext_u.retain(|&w| g.has_edge(v, w));
            if gamma_ext_u.len() <= covered_out.len() {
                break;
            }
        }
        if gamma_ext_u.len() > covered_out.len() {
            gamma_ext_u.sort_unstable();
            covered_out.clear();
            covered_out.extend_from_slice(&gamma_ext_u);
            best_vertex = Some(u);
        }
    }
    scratch.put_vec(non_neighbors_in_s);
    scratch.put_vec(gamma_ext_u);
    scratch.put_membership(membership);
    scratch.put_degrees(degrees);
    best_vertex
}

/// Reorders `ext` so that the vertices of `covered` form the tail, preserving
/// the relative order of the non-covered prefix (which the extension loop will
/// iterate over). Returns the number of non-covered vertices (the prefix
/// length to iterate).
pub fn move_cover_to_tail(ext: &mut [u32], covered: &[u32]) -> usize {
    let mut scratch = MiningScratch::fresh();
    move_cover_to_tail_with(ext, covered, &mut scratch)
}

/// In-place core of [`move_cover_to_tail`]: compacts the non-covered prefix
/// forward and copies the covered tail back from a scratch buffer — no
/// allocation, `ext`'s own buffer is reused.
pub fn move_cover_to_tail_with(
    ext: &mut [u32],
    covered: &[u32],
    scratch: &mut MiningScratch,
) -> usize {
    if covered.is_empty() {
        return ext.len();
    }
    let mut tail = scratch.take_vec();
    let mut write = 0usize;
    for read in 0..ext.len() {
        let v = ext[read];
        if covered.binary_search(&v).is_ok() {
            tail.push(v);
        } else {
            ext[write] = v;
            write += 1;
        }
    }
    let prefix_len = write;
    ext[prefix_len..].copy_from_slice(&tail);
    scratch.put_vec(tail);
    prefix_len
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcm_graph::{Graph, VertexId};

    fn local(edges: &[(u32, u32)], n: usize) -> LocalGraph {
        let g = Graph::from_edges(n, edges.iter().copied()).unwrap();
        let all: Vec<VertexId> = g.vertices().collect();
        LocalGraph::from_induced(&g, &all)
    }

    #[test]
    fn cover_vertex_in_a_clique_covers_everything_else() {
        // K5 on {0..4}; S = {0}, ext = {1, 2, 3, 4}. Any u ∈ ext is adjacent
        // to all of S and to all other ext vertices, and u has no non-neighbor
        // in S, so C_S(u) = Γ_ext(u) = the other three vertices.
        let edges: Vec<(u32, u32)> = (0..5u32)
            .flat_map(|i| ((i + 1)..5).map(move |j| (i, j)))
            .collect();
        let g = local(&edges, 5);
        let params = MiningParams::new(0.8, 2);
        let cover = find_cover_vertex(&g, &[0], &[1, 2, 3, 4], &params);
        assert!(cover.vertex.is_some());
        assert_eq!(cover.covered.len(), 3);
    }

    #[test]
    fn cover_requires_su_degree_threshold() {
        // Star: 0 is the centre; S = {0, 1}, ext = {2, 3}. Vertex 2 has
        // d_S(2) = 1 < ⌈0.9·2⌉ = 2 so the rule is inapplicable for it (and
        // likewise for 3) → no cover vertex.
        let g = local(&[(0, 1), (0, 2), (0, 3)], 4);
        let params = MiningParams::new(0.9, 2);
        let cover = find_cover_vertex(&g, &[0, 1], &[2, 3], &params);
        assert_eq!(cover.vertex, None);
        assert!(cover.covered.is_empty());
    }

    #[test]
    fn cover_intersects_non_neighbor_adjacency() {
        // S = {0, 1}; u = 2 adjacent to 0 but NOT to 1; ext also has 3 and 4.
        // 3 is adjacent to u and to 1; 4 is adjacent to u but not to 1.
        // C_S(2) must only keep 3 (the non-neighbor 1 of u must be adjacent to
        // every covered vertex). For the rule to apply at all, both u and the
        // non-neighbor 1 must meet the d_S ≥ ⌈γ|S|⌉ = 1 bar: d_S(2) = 1 ✓,
        // d_S(1) = 1 ✓ (0–1 edge).
        let g = local(
            &[
                (0, 1),
                (0, 2),
                (2, 3),
                (2, 4),
                (1, 3),
                (0, 3), // make 3 also adjacent to 0 (richer ext structure)
            ],
            5,
        );
        let params = MiningParams::new(0.5, 2);
        let cover = find_cover_vertex(&g, &[0, 1], &[2, 3, 4], &params);
        // Vertex 3 is adjacent to both members of S, has Γ_ext = {2}, so its
        // cover set is {2} (no non-neighbors in S). Vertex 2's cover set is
        // {3} as analysed above. Either is a valid "largest" (size 1); the
        // implementation picks the first maximal one encountered: vertex 2.
        assert_eq!(cover.covered.len(), 1);
        assert!(cover.vertex == Some(2) || cover.vertex == Some(3));
        if cover.vertex == Some(2) {
            assert_eq!(cover.covered, vec![3]);
        }
    }

    #[test]
    fn empty_ext_has_no_cover() {
        let g = local(&[(0, 1)], 2);
        let params = MiningParams::new(0.9, 2);
        let cover = find_cover_vertex(&g, &[0, 1], &[], &params);
        assert_eq!(cover, CoverVertex::default());
    }

    #[test]
    fn move_cover_to_tail_preserves_prefix_order() {
        let mut ext = vec![5u32, 9, 2, 7, 4];
        let covered = vec![2u32, 7];
        let prefix_len = move_cover_to_tail(&mut ext, &covered);
        assert_eq!(prefix_len, 3);
        assert_eq!(&ext[..3], &[5, 9, 4]);
        let mut tail = ext[3..].to_vec();
        tail.sort_unstable();
        assert_eq!(tail, covered);
    }

    #[test]
    fn move_cover_with_empty_cover_is_identity() {
        let mut ext = vec![1u32, 2, 3];
        let prefix_len = move_cover_to_tail(&mut ext, &[]);
        assert_eq!(prefix_len, 3);
        assert_eq!(ext, vec![1, 2, 3]);
    }
}
