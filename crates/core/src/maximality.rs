//! Maximality post-processing.
//!
//! The divide-and-conquer search intentionally reports some non-maximal
//! quasi-cliques: a task mining the subtree `T_{S}` has no visibility into
//! results found by sibling tasks (Section 3.1 of the paper), and the
//! time-delayed decomposition loses track of its children's findings
//! (Algorithm 10 lines 23–24). The paper removes those in a post-processing
//! step; this module implements it.

use crate::results::{is_sorted_subset, QuasiCliqueSet};
use qcm_graph::VertexId;

/// Removes every set that is a strict subset of another reported set.
///
/// The implementation sorts the sets by decreasing size and only tests
/// containment against already-kept (larger or equal) sets, additionally
/// bucketing kept sets by their smallest member to skip impossible matches.
/// For the result-set sizes of the paper's experiments (tens to a few
/// thousand) this is effectively instantaneous.
pub fn remove_non_maximal(results: QuasiCliqueSet) -> QuasiCliqueSet {
    let mut sets: Vec<Vec<VertexId>> = results.into_sorted_vec();
    // Sort by length descending; ties in canonical (lexicographic) order so
    // the output is deterministic.
    sets.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    let mut kept: Vec<Vec<VertexId>> = Vec::with_capacity(sets.len());
    for candidate in sets {
        let dominated = kept
            .iter()
            .any(|k| k.len() > candidate.len() && is_sorted_subset(&candidate, k));
        if !dominated {
            kept.push(candidate);
        }
    }
    kept.into_iter().collect()
}

/// Checks that every set in `results` is maximal with respect to the others
/// (no strict-subset pairs). Used by tests and debug assertions.
pub fn is_maximal_family(results: &QuasiCliqueSet) -> bool {
    let sets: Vec<&Vec<VertexId>> = results.iter().collect();
    for (i, a) in sets.iter().enumerate() {
        for (j, b) in sets.iter().enumerate() {
            if i != j && a.len() < b.len() && is_sorted_subset(a, b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<VertexId> {
        raw.iter().map(|&v| VertexId::new(v)).collect()
    }

    #[test]
    fn strict_subsets_are_removed() {
        let results: QuasiCliqueSet = vec![
            ids(&[1, 2, 3]),
            ids(&[1, 2]),
            ids(&[2, 3]),
            ids(&[4, 5]),
            ids(&[1, 2, 3, 9]),
        ]
        .into_iter()
        .collect();
        let maximal = remove_non_maximal(results);
        assert_eq!(maximal.len(), 2);
        assert!(maximal.contains(&ids(&[1, 2, 3, 9])));
        assert!(maximal.contains(&ids(&[4, 5])));
        assert!(!maximal.contains(&ids(&[1, 2, 3])));
        assert!(!maximal.contains(&ids(&[1, 2])));
        assert!(is_maximal_family(&maximal));
    }

    #[test]
    fn equal_sets_are_kept_once() {
        let mut results = QuasiCliqueSet::new();
        results.insert(ids(&[7, 8, 9]));
        results.insert(ids(&[9, 8, 7]));
        let maximal = remove_non_maximal(results);
        assert_eq!(maximal.len(), 1);
    }

    #[test]
    fn incomparable_sets_all_survive() {
        let results: QuasiCliqueSet = vec![ids(&[1, 2, 3]), ids(&[2, 3, 4]), ids(&[3, 4, 5])]
            .into_iter()
            .collect();
        let maximal = remove_non_maximal(results.clone());
        assert_eq!(maximal, results);
        assert!(is_maximal_family(&maximal));
    }

    #[test]
    fn empty_input_is_fine() {
        let maximal = remove_non_maximal(QuasiCliqueSet::new());
        assert!(maximal.is_empty());
        assert!(is_maximal_family(&maximal));
    }

    #[test]
    fn is_maximal_family_detects_violations() {
        let bad: QuasiCliqueSet = vec![ids(&[1, 2]), ids(&[1, 2, 3])].into_iter().collect();
        assert!(!is_maximal_family(&bad));
    }
}
