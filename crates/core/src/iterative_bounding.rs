//! Iterative bound-based pruning — Algorithm 1 of the paper.
//!
//! Given a candidate `⟨S, ext(S)⟩`, `iterative_bounding` repeatedly
//!
//! 1. recomputes the candidate's degrees and the bounds `U_S`, `L_S`,
//! 2. applies critical-vertex pruning (which may *grow* `S`),
//! 3. applies the Type-II rules (which may prune the whole subtree), and
//! 4. applies the Type-I rules (which shrink `ext(S)`),
//!
//! until `ext(S)` is empty or a full round removes nothing. Shrinking
//! `ext(S)` changes the degrees, which tightens the bounds, which can enable
//! more pruning — hence the loop (topic T4 of the paper).
//!
//! The return value is `true` iff the *extensions* of `S` are pruned (the
//! caller must not recurse further); `S` itself is examined and reported here
//! whenever the paper requires it, so no maximal result is ever missed.

use crate::bounds::{lower_bound, upper_bound, LowerBound, UpperBound};
use crate::context::MiningContext;
use crate::critical::{collect_critical_moves, find_critical_vertex};
use crate::degrees::{
    compute_degrees_into, compute_ee_degrees_into, Degrees, Membership, MembershipTable,
};
use crate::rules::{check_type2, type1_prunable, Type2Outcome};

/// Outcome of computing both bounds for the current `⟨S, ext(S)⟩`.
struct BoundState {
    /// `U_S` if the upper-bound family is enabled and feasible.
    us: Option<usize>,
    /// `L_S` if the lower-bound family is enabled (or needed by the
    /// critical-vertex rule) and feasible.
    ls: Option<usize>,
}

/// Computes the bounds, handling the three pruning outcomes the paper attaches
/// to bound computation (below Eqs. 4, 7, 8 and Algorithm 1 line 3):
///
/// * upper bound infeasible → prune extensions, but examine `G(S)` first;
/// * lower bound infeasible → prune `S` and extensions;
/// * `U_S < L_S` → prune `S` and extensions.
///
/// Returns `Err(())` when the caller should return `true` immediately (the
/// reporting of `G(S)`, when required, has already happened).
fn compute_bounds(
    ctx: &mut MiningContext<'_>,
    s: &[u32],
    ext: &[u32],
    degrees: &Degrees,
) -> Result<BoundState, ()> {
    let mut us = None;
    if ctx.config.upper_bound {
        match upper_bound(&ctx.params, degrees, ext.len()) {
            UpperBound::Bound(b) => us = Some(b),
            UpperBound::ExtensionsPruned => {
                // Same actions as Algorithm 1 lines 23–25: G(S) is still a
                // candidate result.
                ctx.stats.type2_pruned += 1;
                ctx.report_if_valid(s);
                return Err(());
            }
        }
    }
    let mut ls = None;
    if ctx.config.lower_bound || ctx.config.critical_vertex {
        match lower_bound(&ctx.params, degrees, ext.len()) {
            LowerBound::Bound(b) => ls = Some(b),
            LowerBound::AllPruned => {
                if ctx.config.lower_bound {
                    // S and its extensions are pruned without examination.
                    ctx.stats.type2_pruned += 1;
                    return Err(());
                }
                // Lower bound only computed for the critical-vertex rule,
                // which cannot apply without a feasible L_S; fall through with
                // ls = None so no lower-bound-based pruning is used.
            }
        }
    }
    if let (Some(us_v), Some(ls_v)) = (us, ls) {
        if ctx.config.upper_bound && ctx.config.lower_bound && us_v < ls_v {
            // L_S ≥ 1 in this situation, so S itself cannot be valid either.
            ctx.stats.type2_pruned += 1;
            return Err(());
        }
    }
    Ok(BoundState { us, ls })
}

/// Algorithm 1: iteratively applies the pruning rules to `⟨S, ext(S)⟩`.
///
/// * Returns `true` iff extending `S` (beyond what critical-vertex moves have
///   already absorbed into it) is pruned; any required examination of `G(S)`
///   has been performed before returning.
/// * Returns `false` only when `ext(S)` is non-empty and the caller should
///   keep extending `S` (Algorithm 2 line 20 / Algorithm 10 line 19).
///
/// Both `s` and `ext` are passed by mutable reference: Type-I pruning shrinks
/// `ext`, and critical-vertex pruning can move vertices from `ext` into `s`.
pub fn iterative_bounding(
    ctx: &mut MiningContext<'_>,
    s: &mut Vec<u32>,
    ext: &mut Vec<u32>,
) -> bool {
    // All working frames come from the context's scratch arena: in steady
    // state a full bounding loop — degree recomputations included — performs
    // zero heap allocations.
    let mut degrees = ctx.scratch.take_degrees();
    let mut membership = ctx.scratch.take_membership(ctx.graph.capacity());
    let mut ee = ctx.scratch.take_vec();
    let mut kept = ctx.scratch.take_vec();
    let mut moved = ctx.scratch.take_vec();
    let pruned = bounding_loop(
        ctx,
        s,
        ext,
        &mut degrees,
        &mut membership,
        &mut ee,
        &mut kept,
        &mut moved,
    );
    ctx.scratch.put_vec(moved);
    ctx.scratch.put_vec(kept);
    ctx.scratch.put_vec(ee);
    ctx.scratch.put_membership(membership);
    ctx.scratch.put_degrees(degrees);
    pruned
}

/// The body of Algorithm 1, operating entirely on borrowed scratch frames.
#[allow(clippy::too_many_arguments)]
fn bounding_loop(
    ctx: &mut MiningContext<'_>,
    s: &mut Vec<u32>,
    ext: &mut Vec<u32>,
    degrees: &mut Degrees,
    membership: &mut MembershipTable,
    ee: &mut Vec<u32>,
    kept: &mut Vec<u32>,
    moved: &mut Vec<u32>,
) -> bool {
    loop {
        ctx.stats.bounding_rounds += 1;
        // Line 2: SS/ES/SE degrees (EE deferred to the Type-I phase).
        compute_degrees_into(ctx.graph, s, ext, degrees, membership);

        // Line 3: bounds (may prune).
        let bounds = match compute_bounds(ctx, s, ext, degrees) {
            Ok(b) => b,
            Err(()) => return true,
        };
        let mut us = bounds.us;
        let mut ls = bounds.ls;

        // Lines 4–8: critical-vertex pruning.
        if ctx.config.critical_vertex {
            if let Some(ls_v) = ls {
                if let Some(pos) = find_critical_vertex(&ctx.params, degrees, ls_v) {
                    let v = s[pos];
                    // The paper's fix over Quick: examine G(S) *before*
                    // absorbing the critical vertex's neighborhood, otherwise
                    // a maximal G(S) could be lost.
                    if !ctx.emulate_quick_omissions {
                        ctx.report_if_valid(s);
                    }
                    collect_critical_moves(ctx.graph, ext, v, moved);
                    if !moved.is_empty() {
                        ctx.stats.critical_moves += moved.len() as u64;
                        ext.retain(|&u| !ctx.graph.has_edge(u, v));
                        s.extend_from_slice(moved);
                        if ext.is_empty() {
                            // Skip straight to the C1 exit case.
                            break;
                        }
                        // Line 8: recompute degrees and bounds on the grown S.
                        compute_degrees_into(ctx.graph, s, ext, degrees, membership);
                        let bounds = match compute_bounds(ctx, s, ext, degrees) {
                            Ok(b) => b,
                            Err(()) => return true,
                        };
                        us = bounds.us;
                        ls = bounds.ls;
                    }
                }
            }
        }

        // Lines 9–16: Type-II rules.
        match check_type2(&ctx.params, &ctx.config, degrees, ext.len(), us, ls) {
            Type2Outcome::PruneAll => {
                ctx.stats.type2_pruned += 1;
                return true;
            }
            Type2Outcome::PruneExtensionsKeepS => {
                ctx.stats.type2_pruned += 1;
                ctx.report_if_valid(s);
                return true;
            }
            Type2Outcome::None => {}
        }

        // Lines 17–20: Type-I rules (EE-degrees computed lazily here).
        compute_ee_degrees_into(ctx.graph, ext, membership, ee);
        debug_assert!(ext.iter().all(|&u| membership.get(u) == Membership::InExt));
        let mut pruned_any = false;
        kept.clear();
        for (j, &u) in ext.iter().enumerate() {
            if type1_prunable(
                &ctx.params,
                &ctx.config,
                s.len(),
                degrees.ext_in_s[j] as usize,
                ee[j] as usize,
                us,
                ls,
            ) {
                pruned_any = true;
                ctx.stats.type1_pruned += 1;
            } else {
                kept.push(u);
            }
        }
        // The survivor list becomes the new ext; the old buffer becomes the
        // next round's survivor frame. No allocation either way.
        std::mem::swap(ext, kept);

        // Line 21: stop when ext is empty or this round pruned nothing.
        if ext.is_empty() || !pruned_any {
            break;
        }
    }

    // Lines 22–25: if ext is empty, S has nothing to extend — examine it.
    if ext.is_empty() {
        ctx.report_if_valid(s);
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PruneConfig;
    use crate::params::MiningParams;
    use crate::results::QuasiCliqueSet;
    use qcm_graph::{Graph, LocalGraph, VertexId};

    fn figure4_local() -> LocalGraph {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5),
            (5, 6),
            (2, 6),
            (3, 7),
            (7, 8),
            (3, 8),
        ];
        let g = Graph::from_edges(9, edges.iter().copied()).unwrap();
        let all: Vec<VertexId> = g.vertices().collect();
        LocalGraph::from_induced(&g, &all)
    }

    fn run(
        g: &LocalGraph,
        params: MiningParams,
        config: PruneConfig,
        s: &[u32],
        ext: &[u32],
    ) -> (bool, Vec<u32>, Vec<u32>, QuasiCliqueSet) {
        let mut sink = QuasiCliqueSet::new();
        let mut ctx = MiningContext::with_config(g, params, config, &mut sink);
        let mut s = s.to_vec();
        let mut ext = ext.to_vec();
        let pruned = iterative_bounding(&mut ctx, &mut s, &mut ext);
        (pruned, s, ext, sink)
    }

    #[test]
    fn healthy_candidate_is_not_pruned() {
        // S = {a}, ext = {b, c, d, e} with γ = 0.6: the dense 5-vertex region
        // of Figure 4 survives in full.
        let g = figure4_local();
        let (pruned, s, ext, sink) = run(
            &g,
            MiningParams::new(0.6, 4),
            PruneConfig::all_enabled(),
            &[0],
            &[1, 2, 3, 4],
        );
        assert!(!pruned);
        assert_eq!(s, vec![0]);
        assert_eq!(ext.len(), 4);
        assert!(sink.is_empty());
    }

    #[test]
    fn type1_pruning_removes_peripheral_vertices() {
        // S = {a}, ext = {b, c, d, e, f, h}: with γ = 0.9 and τ_size = 4,
        // peripheral vertices like f (adjacent only to b within the
        // candidate region) cannot survive the degree rules.
        let g = figure4_local();
        let (pruned, _s, ext, _sink) = run(
            &g,
            MiningParams::new(0.9, 4),
            PruneConfig::all_enabled(),
            &[0],
            &[1, 2, 3, 4, 5, 7],
        );
        // Whatever the final outcome, f (5) and h (7) must have been dropped
        // from ext if extensions were not wholesale pruned.
        if !pruned {
            assert!(!ext.contains(&5));
            assert!(!ext.contains(&7));
        }
    }

    #[test]
    fn infeasible_candidate_is_pruned_entirely() {
        // S = {f, i}: disconnected within the candidate with nothing in ext to
        // repair it — Type-II pruning must fire and nothing is reported.
        let g = figure4_local();
        let (pruned, _, _, sink) = run(
            &g,
            MiningParams::new(0.9, 2),
            PruneConfig::all_enabled(),
            &[5, 8],
            &[],
        );
        assert!(pruned);
        assert!(sink.is_empty());
    }

    #[test]
    fn empty_ext_reports_valid_s() {
        // S = {a, b, c, e} (0.9-quasi-clique needs ⌈0.9·3⌉ = 3 internal
        // neighbors; all four members have exactly 3), ext = ∅.
        let g = figure4_local();
        let (pruned, _, _, sink) = run(
            &g,
            MiningParams::new(0.9, 4),
            PruneConfig::all_enabled(),
            &[0, 1, 2, 4],
            &[],
        );
        assert!(pruned);
        assert_eq!(sink.len(), 1);
        let expected: Vec<VertexId> = [0u32, 1, 2, 4].iter().map(|&v| VertexId::new(v)).collect();
        assert!(sink.contains(&expected));
    }

    #[test]
    fn critical_vertex_absorbs_required_neighbors() {
        // Same construction as the critical-vertex unit test: a (vertex 0)
        // must absorb both of its extension neighbors {2, 3}.
        let g = {
            let graph = Graph::from_edges(5, [(0, 2), (0, 3), (1, 2), (1, 3), (1, 4)]).unwrap();
            let all: Vec<VertexId> = graph.vertices().collect();
            LocalGraph::from_induced(&graph, &all)
        };
        let (pruned, s, _ext, _sink) = run(
            &g,
            MiningParams::new(0.6, 2),
            PruneConfig::all_enabled(),
            &[0, 1],
            &[2, 3, 4],
        );
        // After the critical move S must contain {0, 1, 2, 3} regardless of
        // whether the remaining extension survives further pruning.
        assert!(
            s.contains(&2) && s.contains(&3),
            "s = {s:?}, pruned = {pruned}"
        );
    }

    #[test]
    fn disabled_rules_leave_candidate_untouched() {
        let g = figure4_local();
        let (pruned, s, ext, sink) = run(
            &g,
            MiningParams::new(0.9, 4),
            PruneConfig::none(),
            &[0],
            &[1, 2, 3, 4, 5, 7],
        );
        assert!(!pruned);
        assert_eq!(s, vec![0]);
        assert_eq!(ext.len(), 6);
        assert!(sink.is_empty());
    }

    #[test]
    fn stats_record_rule_activity() {
        let g = figure4_local();
        let mut sink = QuasiCliqueSet::new();
        let mut ctx = MiningContext::with_config(
            &g,
            MiningParams::new(0.9, 4),
            PruneConfig::all_enabled(),
            &mut sink,
        );
        let mut s = vec![0u32];
        let mut ext = vec![1u32, 2, 3, 4, 5, 7];
        let _ = iterative_bounding(&mut ctx, &mut s, &mut ext);
        assert!(ctx.stats.bounding_rounds >= 1);
        assert!(ctx.stats.type1_pruned + ctx.stats.type2_pruned > 0);
    }
}
