//! Query fingerprinting for result caching.
//!
//! A mining run is fully determined by four inputs: the graph content, γ,
//! τ_size and the pruning configuration (the backend is deliberately *not*
//! part of the identity — serial and parallel runs of the same query produce
//! identical maximal sets, which the workspace's equivalence tests enforce,
//! so a cache may serve a result mined on either backend). [`QueryKey`]
//! bundles those four into a hashable value type that the `qcm-service`
//! result cache keys on, plus a release-stable 64-bit [`QueryKey::digest`]
//! for logs, the CLI and cross-process registries.

use crate::config::PruneConfig;
use crate::params::MiningParams;
use qcm_graph::Fnv1a64;

/// The cache identity of one mining query: graph fingerprint + parameters +
/// pruning configuration.
///
/// Two keys compare equal exactly when a completed result for one query can
/// be served verbatim for the other. Use [`qcm_graph::Graph::content_hash`]
/// for the graph component.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Stable content hash of the input graph
    /// ([`qcm_graph::Graph::content_hash`]).
    pub graph: u64,
    /// Mining parameters (exact rational γ and τ_size).
    pub params: MiningParams,
    /// Pruning-rule configuration. Pruning never changes the result set, but
    /// partial-run behaviour and ablation experiments depend on it, so keys
    /// keep configurations apart rather than assuming rule-insensitivity.
    pub prune: PruneConfig,
}

impl QueryKey {
    /// Builds the key for a query over a graph with the given content hash.
    pub fn new(graph_hash: u64, params: MiningParams, prune: PruneConfig) -> Self {
        QueryKey {
            graph: graph_hash,
            params,
            prune,
        }
    }

    /// A release-stable 64-bit digest of the key (FNV-1a over the canonical
    /// field encoding). Unlike the derived [`Hash`] implementation — which is
    /// only meaningful within one process — this value is reproducible across
    /// processes and releases, so it is safe to print, log and compare
    /// externally.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a64::new();
        h.write_u64(self.graph);
        let (num, den) = self.params.gamma.as_ratio();
        h.write_u64(num);
        h.write_u64(den);
        h.write_u64(self.params.min_size as u64);
        h.write_u64(self.prune_bits());
        h.finish()
    }

    /// The pruning configuration packed into a bitmask (one bit per rule, in
    /// [`PruneConfig::rule_names`] order).
    pub fn prune_bits(&self) -> u64 {
        [
            self.prune.diameter,
            self.prune.size_threshold,
            self.prune.degree,
            self.prune.upper_bound,
            self.prune.lower_bound,
            self.prune.critical_vertex,
            self.prune.cover_vertex,
            self.prune.lookahead,
        ]
        .iter()
        .enumerate()
        .fold(0u64, |bits, (i, &on)| bits | ((on as u64) << i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Gamma;

    fn base_key() -> QueryKey {
        QueryKey::new(
            0xDEAD_BEEF,
            MiningParams::new(0.9, 10),
            PruneConfig::all_enabled(),
        )
    }

    #[test]
    fn equal_queries_have_equal_keys_and_digests() {
        let a = base_key();
        let b = QueryKey::new(
            0xDEAD_BEEF,
            MiningParams {
                // 0.9 reduces to 9/10; an equal rational from another route
                // must produce the same key.
                gamma: Gamma::from_ratio(900_000, 1_000_000),
                min_size: 10,
            },
            PruneConfig::all_enabled(),
        );
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn every_component_distinguishes_keys() {
        let base = base_key();
        let variants = [
            QueryKey { graph: 1, ..base },
            QueryKey::new(
                base.graph,
                MiningParams::new(0.8, 10),
                PruneConfig::all_enabled(),
            ),
            QueryKey::new(
                base.graph,
                MiningParams::new(0.9, 11),
                PruneConfig::all_enabled(),
            ),
            QueryKey::new(
                base.graph,
                MiningParams::new(0.9, 10),
                PruneConfig::all_enabled().without("lookahead"),
            ),
        ];
        for v in variants {
            assert_ne!(base, v);
            assert_ne!(base.digest(), v.digest(), "digest collision for {v:?}");
        }
    }

    #[test]
    fn prune_bits_cover_all_rules() {
        let all = base_key();
        assert_eq!(all.prune_bits(), 0xFF);
        let none = QueryKey::new(0, MiningParams::new(0.9, 10), PruneConfig::none());
        assert_eq!(none.prune_bits(), 0);
        let one_off = QueryKey::new(
            0,
            MiningParams::new(0.9, 10),
            PruneConfig::all_enabled().without("diameter"),
        );
        assert_eq!(one_off.prune_bits(), 0xFE);
    }

    #[test]
    fn digest_is_release_stable() {
        // Pinned value: a change here breaks every persisted digest (logs,
        // registries), so it must be deliberate and called out in a release
        // note, not an accident of refactoring.
        assert_eq!(base_key().digest(), 0x2db1_8ec6_c623_aecd);
    }
}
