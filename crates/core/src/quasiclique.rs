//! Quasi-clique definition checks.
//!
//! Implements Definitions 1–2 of the paper: a γ-quasi-clique is a *connected*
//! subgraph in which every vertex is adjacent to at least `⌈γ·(|S|−1)⌉` of
//! the other vertices; a maximal one has no strict superset that is also a
//! γ-quasi-clique.

use crate::params::MiningParams;
use qcm_graph::{Graph, LocalGraph, Neighborhoods, VertexId};

/// Checks whether the set of *local* vertex indices `s` induces a
/// γ-quasi-clique in the task subgraph `g`.
///
/// The check follows Definition 1 exactly: the induced subgraph must be
/// connected and every member must meet the degree threshold. A single vertex
/// is a quasi-clique; the empty set is not.
pub fn is_quasi_clique_local(g: &LocalGraph, s: &[u32], params: &MiningParams) -> bool {
    let n = s.len();
    if n == 0 {
        return false;
    }
    if n == 1 {
        return true;
    }
    let required = params.required_degree(n);
    // Degree check.
    for &v in s {
        let d = s.iter().filter(|&&u| u != v && g.has_edge(u, v)).count();
        if d < required {
            return false;
        }
    }
    is_connected_local(g, s)
}

/// Checks whether the set of global vertex ids `s` induces a γ-quasi-clique in
/// the full graph `g`.
pub fn is_quasi_clique(g: &Graph, s: &[VertexId], params: &MiningParams) -> bool {
    let n = s.len();
    if n == 0 {
        return false;
    }
    if n == 1 {
        return true;
    }
    let required = params.required_degree(n);
    for &v in s {
        let d = s.iter().filter(|&&u| u != v && g.has_edge(u, v)).count();
        if d < required {
            return false;
        }
    }
    qcm_graph::traversal::is_connected_subset(g, s)
}

/// Checks whether `s` is a *valid* quasi-clique for reporting: it is a
/// γ-quasi-clique and satisfies the size threshold τ_size.
pub fn is_valid_quasi_clique(g: &Graph, s: &[VertexId], params: &MiningParams) -> bool {
    s.len() >= params.min_size && is_quasi_clique(g, s, params)
}

/// Definition-1 check through the backend-agnostic [`Neighborhoods`] trait
/// (raw `u32` ids in the representation's own index space): size threshold,
/// per-member degree and connectivity.
///
/// This is the kernel behind the engine's post-mining result validation —
/// every backend's answers are re-checked against the shared (hub-indexed)
/// edge-query path before they are published or cached, so an indexed
/// representation and the plain CSR can cross-validate each other.
pub fn is_valid_quasi_clique_over(
    nbhd: &dyn Neighborhoods,
    s: &[u32],
    params: &MiningParams,
) -> bool {
    let n = s.len();
    if n < params.min_size {
        return false;
    }
    if n == 1 {
        return true;
    }
    let required = params.required_degree(n);
    for &v in s {
        let d = s.iter().filter(|&&u| u != v && nbhd.adjacent(u, v)).count();
        if d < required {
            return false;
        }
    }
    // Connectivity over the induced member set.
    let mut sorted = s.to_vec();
    sorted.sort_unstable();
    let mut visited = vec![false; sorted.len()];
    let mut stack = vec![0usize];
    visited[0] = true;
    let mut count = 1usize;
    while let Some(i) = stack.pop() {
        nbhd.for_each_neighbor(sorted[i], &mut |w| {
            if let Ok(j) = sorted.binary_search(&w) {
                if !visited[j] {
                    visited[j] = true;
                    count += 1;
                    stack.push(j);
                }
            }
        });
    }
    count == sorted.len()
}

/// Local-index version of [`is_valid_quasi_clique`].
pub fn is_valid_quasi_clique_local(g: &LocalGraph, s: &[u32], params: &MiningParams) -> bool {
    s.len() >= params.min_size && is_quasi_clique_local(g, s, params)
}

/// Connectivity of the subgraph induced by local indices `s`.
fn is_connected_local(g: &LocalGraph, s: &[u32]) -> bool {
    if s.len() <= 1 {
        return true;
    }
    let mut sorted = s.to_vec();
    sorted.sort_unstable();
    let mut visited = vec![false; sorted.len()];
    let mut stack = vec![0usize];
    visited[0] = true;
    let mut count = 1usize;
    while let Some(i) = stack.pop() {
        for w in g.neighbors(sorted[i]) {
            if let Ok(j) = sorted.binary_search(&w) {
                if !visited[j] {
                    visited[j] = true;
                    count += 1;
                    stack.push(j);
                }
            }
        }
    }
    count == sorted.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcm_graph::Graph;

    /// Figure 4 graph of the paper (a..i → 0..8).
    fn figure4() -> Graph {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5),
            (5, 6),
            (2, 6),
            (3, 7),
            (7, 8),
            (3, 8),
        ];
        Graph::from_edges(9, edges.iter().copied()).unwrap()
    }

    fn ids(raw: &[u32]) -> Vec<VertexId> {
        raw.iter().map(|&v| VertexId::new(v)).collect()
    }

    #[test]
    fn paper_example_s1_and_s2_are_point_six_quasi_cliques() {
        // Paper Section 3.1: S1 = {a,b,c,d}, S2 = S1 ∪ {e}, γ = 0.6:
        // both are γ-quasi-cliques and S1 is not maximal.
        let g = figure4();
        let params = MiningParams::new(0.6, 2);
        let s1 = ids(&[0, 1, 2, 3]);
        let s2 = ids(&[0, 1, 2, 3, 4]);
        assert!(is_quasi_clique(&g, &s1, &params));
        assert!(is_quasi_clique(&g, &s2, &params));
    }

    #[test]
    fn degree_shortfall_is_detected() {
        let g = figure4();
        // {a, b, c, d} with γ = 0.9 would require each vertex to have
        // ⌈0.9·3⌉ = 3 neighbors inside; b has only 2 (a, c).
        let params = MiningParams::new(0.9, 2);
        assert!(!is_quasi_clique(&g, &ids(&[0, 1, 2, 3]), &params));
    }

    #[test]
    fn disconnected_sets_are_rejected_even_with_low_gamma() {
        // Two disjoint edges: every vertex has 1 neighbor among the 3 others,
        // which passes γ = 1/3, but the subgraph is disconnected.
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let params = MiningParams::new(0.33, 2);
        assert!(!is_quasi_clique(&g, &ids(&[0, 1, 2, 3]), &params));
        assert!(is_quasi_clique(&g, &ids(&[0, 1]), &params));
    }

    #[test]
    fn singleton_and_empty_sets() {
        let g = figure4();
        let params = MiningParams::new(0.9, 2);
        assert!(is_quasi_clique(&g, &ids(&[5]), &params));
        assert!(!is_quasi_clique(&g, &[], &params));
        // But a singleton never satisfies the size threshold.
        assert!(!is_valid_quasi_clique(&g, &ids(&[5]), &params));
    }

    #[test]
    fn validity_includes_size_threshold() {
        let g = figure4();
        let params = MiningParams::new(0.6, 5);
        assert!(is_valid_quasi_clique(&g, &ids(&[0, 1, 2, 3, 4]), &params));
        assert!(!is_valid_quasi_clique(&g, &ids(&[0, 1, 2, 3]), &params));
    }

    #[test]
    fn local_graph_checks_agree_with_global() {
        let g = figure4();
        let all: Vec<VertexId> = g.vertices().collect();
        let lg = LocalGraph::from_induced(&g, &all);
        let params = MiningParams::new(0.6, 2);
        // Local indices equal global ids here because we induced on all vertices.
        assert!(is_quasi_clique_local(&lg, &[0, 1, 2, 3, 4], &params));
        assert!(!is_quasi_clique_local(&lg, &[], &params));
        assert!(is_quasi_clique_local(&lg, &[7], &params));
        let strict = MiningParams::new(0.9, 2);
        assert!(!is_quasi_clique_local(&lg, &[0, 1, 2, 3], &strict));
        assert!(is_valid_quasi_clique_local(&lg, &[0, 1, 2, 3, 4], &params));
        assert!(!is_valid_quasi_clique_local(
            &lg,
            &[0, 1, 2, 3, 4],
            &MiningParams::new(0.6, 6)
        ));
    }

    #[test]
    fn clique_is_quasi_clique_for_gamma_one() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        let params = MiningParams::new(1.0, 2);
        assert!(is_quasi_clique(&g, &ids(&[0, 1, 2, 3]), &params));
        // Remove one edge conceptually by testing a subset missing it: {0,1,2}
        // is still a triangle → fine.
        assert!(is_quasi_clique(&g, &ids(&[0, 1, 2]), &params));
    }
}
