//! Cooperative cancellation and deadlines.
//!
//! A [`CancelToken`] is a cheap, cloneable handle to a shared stop flag with
//! an optional deadline. The mining loops ([`crate::recursive_mine()`], the
//! engine's worker pop loop, the time-delayed decomposition) poll the token at
//! the top of their expansion/scheduling loops and unwind cooperatively when
//! it fires, so a cancelled or deadline-hit run returns the results found so
//! far instead of running to completion — the behaviour `qcm::Session`
//! surfaces as a partial, well-labelled `MiningReport`.
//!
//! Tokens form a chain: a child created with [`CancelToken::with_deadline`]
//! observes its parent's flag, which is how a session-held manual token and a
//! per-run deadline compose into one poll.

use qcm_obs::clock::Instant;
use qcm_sync::atomic::{AtomicBool, Ordering};
use qcm_sync::Arc;
use std::time::Duration;

/// Why a run stopped before completing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The token's deadline passed.
    DeadlineExceeded,
}

/// How a mining run ended.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RunOutcome {
    /// The search space was fully explored; the result set is exact.
    #[default]
    Complete,
    /// The run was cancelled; the result set covers only the explored part
    /// of the search space (and may contain sets a complete run would have
    /// replaced with supersets).
    Cancelled,
    /// The deadline passed; the result set covers only the explored part of
    /// the search space (and may contain sets a complete run would have
    /// replaced with supersets).
    DeadlineExceeded,
    /// A fault (message loss, node crash, pull timeout) dropped part of the
    /// workload and it could not be recovered; the result set covers only the
    /// portion of the search space that completed.
    Faulted,
}

impl RunOutcome {
    /// True if the run explored the full search space.
    pub fn is_complete(&self) -> bool {
        matches!(self, RunOutcome::Complete)
    }
}

impl From<Option<CancelReason>> for RunOutcome {
    fn from(reason: Option<CancelReason>) -> Self {
        match reason {
            None => RunOutcome::Complete,
            Some(CancelReason::Cancelled) => RunOutcome::Cancelled,
            Some(CancelReason::DeadlineExceeded) => RunOutcome::DeadlineExceeded,
        }
    }
}

#[derive(Debug)]
struct CancelInner {
    flag: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<Arc<CancelInner>>,
}

impl CancelInner {
    fn check(&self) -> Option<CancelReason> {
        // ordering: Relaxed — the cancel flag is a standalone monotonic bool;
        // nothing is published through it, and a late observation only delays
        // cooperative shutdown by one poll.
        if self.flag.load(Ordering::Relaxed) {
            return Some(CancelReason::Cancelled);
        }
        if let Some(parent) = &self.parent {
            if let Some(reason) = parent.check() {
                return Some(reason);
            }
        }
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => Some(CancelReason::DeadlineExceeded),
            _ => None,
        }
    }
}

/// A cheap, cloneable cancellation handle.
///
/// The default token ([`CancelToken::never`]) carries no state and never
/// fires, so threading tokens through hot paths costs one `Option` check when
/// cancellation is unused.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Option<Arc<CancelInner>>,
}

impl CancelToken {
    /// A token that never fires (the default for all miners).
    pub fn never() -> Self {
        CancelToken { inner: None }
    }

    /// A manually cancellable token with no deadline.
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                deadline: None,
                parent: None,
            })),
        }
    }

    /// A child token that fires when this token fires *or* when `deadline`
    /// (measured from now) passes. `None` returns a plain clone.
    pub fn with_deadline(&self, deadline: Option<Duration>) -> Self {
        match deadline {
            None => self.clone(),
            Some(d) => CancelToken {
                inner: Some(Arc::new(CancelInner {
                    flag: AtomicBool::new(false),
                    deadline: Some(Instant::now() + d),
                    parent: self.inner.clone(),
                })),
            },
        }
    }

    /// Requests cancellation. All clones and child tokens observe it; calling
    /// it on a [`CancelToken::never`] token is a no-op.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            // ordering: Relaxed — pairs with the Relaxed poll in `check`; the flag
            // carries no payload, only the monotonic cancelled bit.
            inner.flag.store(true, Ordering::Relaxed);
        }
    }

    /// The reason the token has fired, or `None` while it is still live.
    /// Explicit cancellation takes precedence over an elapsed deadline.
    pub fn check(&self) -> Option<CancelReason> {
        self.inner.as_deref().and_then(CancelInner::check)
    }

    /// True if the token has fired (cancelled or deadline passed).
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => inner.check().is_some(),
        }
    }

    /// The outcome label for a run governed by this token.
    pub fn run_outcome(&self) -> RunOutcome {
        self.check().into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_fires() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        t.cancel(); // no-op
        assert!(!t.is_cancelled());
        assert_eq!(t.run_outcome(), RunOutcome::Complete);
        assert_eq!(CancelToken::default().check(), None);
    }

    #[test]
    fn manual_cancel_propagates_to_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.check(), Some(CancelReason::Cancelled));
        assert_eq!(clone.run_outcome(), RunOutcome::Cancelled);
    }

    #[test]
    fn zero_deadline_fires_immediately() {
        let t = CancelToken::never().with_deadline(Some(Duration::ZERO));
        assert!(t.is_cancelled());
        assert_eq!(t.check(), Some(CancelReason::DeadlineExceeded));
        assert_eq!(t.run_outcome(), RunOutcome::DeadlineExceeded);
    }

    #[test]
    fn long_deadline_stays_live() {
        let t = CancelToken::never().with_deadline(Some(Duration::from_secs(3600)));
        assert!(!t.is_cancelled());
        assert_eq!(t.run_outcome(), RunOutcome::Complete);
    }

    #[test]
    fn child_observes_parent_cancellation_and_prefers_it() {
        let parent = CancelToken::new();
        let child = parent.with_deadline(Some(Duration::from_secs(3600)));
        assert!(!child.is_cancelled());
        parent.cancel();
        assert_eq!(child.check(), Some(CancelReason::Cancelled));
        // Cancelling the child does not fire the parent.
        let parent2 = CancelToken::new();
        let child2 = parent2.with_deadline(Some(Duration::from_secs(3600)));
        child2.cancel();
        assert!(child2.is_cancelled());
        assert!(!parent2.is_cancelled());
    }

    #[test]
    fn explicit_cancel_wins_over_elapsed_deadline() {
        let t = CancelToken::never().with_deadline(Some(Duration::ZERO));
        t.cancel();
        assert_eq!(t.check(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn with_deadline_none_is_a_plain_clone() {
        let t = CancelToken::new();
        let clone = t.with_deadline(None);
        t.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn outcome_conversion_covers_all_reasons() {
        assert_eq!(RunOutcome::from(None), RunOutcome::Complete);
        assert!(RunOutcome::Complete.is_complete());
        assert!(!RunOutcome::DeadlineExceeded.is_complete());
        assert!(!RunOutcome::Cancelled.is_complete());
    }
}
