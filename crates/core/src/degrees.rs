//! Degree bookkeeping for a candidate `⟨S, ext(S)⟩`.
//!
//! The pruning rules of the paper use four kinds of degrees (topic T2,
//! Section 4):
//!
//! * **SS-degrees** `d_S(v)` for `v ∈ S`;
//! * **ES-degrees** `d_ext(S)(v)` for `v ∈ S`;
//! * **SE-degrees** `d_S(u)` for `u ∈ ext(S)`;
//! * **EE-degrees** `d_ext(S)(u)` for `u ∈ ext(S)`.
//!
//! The first three are needed to compute the upper/lower bounds `U_S`, `L_S`;
//! the EE-degrees are only needed by the Type-I rules and are therefore
//! computed lazily (see [`compute_ee_degrees`]), exactly as the paper
//! recommends.

use qcm_graph::bitset::VertexBitSet;
use qcm_graph::neighborhoods::perf;
use qcm_graph::LocalGraph;

/// Which side of the candidate a local vertex currently belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Membership {
    /// Not in `S` nor in `ext(S)`.
    Neither,
    /// In the candidate set `S`.
    InS,
    /// In the extension set `ext(S)`.
    InExt,
}

/// A membership table over the local index space of a task subgraph.
///
/// Backed by two [`VertexBitSet`]s so the degree kernels can intersect a hub
/// vertex's dense neighbor row against either side with word-parallel ANDs
/// instead of walking the adjacency list.
#[derive(Clone, Debug)]
pub struct MembershipTable {
    in_s: VertexBitSet,
    in_ext: VertexBitSet,
}

impl MembershipTable {
    /// Builds the table for the given `S` and `ext(S)` (local indices).
    pub fn new(g: &LocalGraph, s: &[u32], ext: &[u32]) -> Self {
        let mut table = MembershipTable::with_capacity(g.capacity());
        table.fill(s, ext);
        table
    }

    /// An empty table able to address ids `0..capacity` (pool construction).
    pub fn with_capacity(capacity: usize) -> Self {
        MembershipTable {
            in_s: VertexBitSet::new(capacity),
            in_ext: VertexBitSet::new(capacity),
        }
    }

    /// Clears the table and re-targets it to a (possibly different) id
    /// capacity, reusing the existing bitset buffers (scratch-pool reuse
    /// across task subgraphs).
    pub fn reset(&mut self, capacity: usize) {
        self.in_s.reset(capacity);
        self.in_ext.reset(capacity);
    }

    /// Populates a cleared table with the candidate sides.
    pub fn fill(&mut self, s: &[u32], ext: &[u32]) {
        for &v in s {
            self.in_s.insert(v);
        }
        for &u in ext {
            debug_assert!(!self.in_s.contains(u), "S and ext overlap");
            self.in_ext.insert(u);
        }
    }

    /// Marks `v` as a member of `S` (test/scratch helper).
    pub fn insert_s(&mut self, v: u32) {
        self.in_s.insert(v);
    }

    /// Heap footprint of the two bitsets in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.in_s.memory_bytes() + self.in_ext.memory_bytes()
    }

    /// Membership of local vertex `v`.
    #[inline]
    pub fn get(&self, v: u32) -> Membership {
        if self.in_s.contains(v) {
            Membership::InS
        } else if self.in_ext.contains(v) {
            Membership::InExt
        } else {
            Membership::Neither
        }
    }

    /// The `S`-side members as a bitset (for word-parallel hub counting).
    #[inline]
    pub fn s_bits(&self) -> &VertexBitSet {
        &self.in_s
    }

    /// The `ext(S)`-side members as a bitset.
    #[inline]
    pub fn ext_bits(&self) -> &VertexBitSet {
        &self.in_ext
    }
}

/// The SS/ES/SE degree vectors of a candidate (EE computed separately).
///
/// Entries are positionally aligned with the `s` and `ext` slices passed to
/// [`compute_degrees`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Degrees {
    /// `d_S(v)` for every `v ∈ S` (aligned with `s`).
    pub s_in_s: Vec<u32>,
    /// `d_ext(S)(v)` for every `v ∈ S` (aligned with `s`).
    pub s_in_ext: Vec<u32>,
    /// `d_S(u)` for every `u ∈ ext(S)` (aligned with `ext`).
    pub ext_in_s: Vec<u32>,
}

impl Degrees {
    /// Empty degree vectors (pool construction; filled by
    /// [`compute_degrees_into`]).
    pub fn empty() -> Self {
        Degrees {
            s_in_s: Vec::new(),
            s_in_ext: Vec::new(),
            ext_in_s: Vec::new(),
        }
    }

    /// Clears all three vectors, keeping their buffers.
    pub fn clear(&mut self) {
        self.s_in_s.clear();
        self.s_in_ext.clear();
        self.ext_in_s.clear();
    }

    /// `d_min = min_{v∈S} (d_S(v) + d_ext(S)(v))` (Eq. 1 of the paper).
    /// Returns `None` for an empty `S`.
    pub fn dmin(&self) -> Option<usize> {
        self.s_in_s
            .iter()
            .zip(&self.s_in_ext)
            .map(|(&a, &b)| (a + b) as usize)
            .min()
    }

    /// `d_min^S = min_{v∈S} d_S(v)` (Eq. 6). `None` for an empty `S`.
    pub fn dmin_s(&self) -> Option<usize> {
        self.s_in_s.iter().map(|&a| a as usize).min()
    }

    /// Sum of SS-degrees `Σ_{v∈S} d_S(v)` (used by Lemma 2).
    pub fn sum_s_in_s(&self) -> usize {
        self.s_in_s.iter().map(|&a| a as usize).sum()
    }

    /// SE-degrees sorted in non-increasing order (the `u_1, u_2, …` ordering
    /// required by Lemma 2 and Figures 6–7 of the paper).
    pub fn sorted_ext_in_s_desc(&self) -> Vec<u32> {
        let mut sorted = self.ext_in_s.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        sorted
    }
}

/// Computes SS, ES and SE degrees of the candidate `⟨s, ext⟩` over the task
/// subgraph `g`.
///
/// Low-degree members walk their adjacency list (`O(d)`); members with a hub
/// row ([`LocalGraph::build_hub_index`]) are counted by word-parallel AND of
/// the row against the membership bitsets (`O(capacity / 64)` per member).
/// Both paths rely on `S`/`ext` members being alive, so a hub row's stale
/// bits for peeled vertices can never be counted.
pub fn compute_degrees(g: &LocalGraph, s: &[u32], ext: &[u32]) -> (Degrees, MembershipTable) {
    let mut degrees = Degrees::empty();
    let mut membership = MembershipTable::with_capacity(g.capacity());
    compute_degrees_into(g, s, ext, &mut degrees, &mut membership);
    (degrees, membership)
}

/// Allocation-free core of [`compute_degrees`]: rebuilds `membership` (any
/// prior contents and capacity are discarded) and refills `degrees` in place.
/// The hot path calls this with scratch-pooled frames, so a bounding round
/// recomputing degrees touches no heap.
pub fn compute_degrees_into(
    g: &LocalGraph,
    s: &[u32],
    ext: &[u32],
    degrees: &mut Degrees,
    membership: &mut MembershipTable,
) {
    membership.reset(g.capacity());
    membership.fill(s, ext);
    degrees.clear();
    degrees.s_in_s.resize(s.len(), 0);
    degrees.s_in_ext.resize(s.len(), 0);
    degrees.ext_in_s.resize(ext.len(), 0);
    for (i, &v) in s.iter().enumerate() {
        if let Some(row) = g.hub_row(v) {
            perf::count_intersections(2);
            degrees.s_in_s[i] = row.intersection_count(membership.s_bits()) as u32;
            degrees.s_in_ext[i] = row.intersection_count(membership.ext_bits()) as u32;
            continue;
        }
        // `raw_neighbors` is safe here: peeled vertices are in neither
        // membership set, so they contribute to no counter.
        for &w in g.raw_neighbors(v) {
            match membership.get(w) {
                Membership::InS => degrees.s_in_s[i] += 1,
                Membership::InExt => degrees.s_in_ext[i] += 1,
                Membership::Neither => {}
            }
        }
    }
    for (j, &u) in ext.iter().enumerate() {
        if let Some(row) = g.hub_row(u) {
            perf::count_intersections(1);
            degrees.ext_in_s[j] = row.intersection_count(membership.s_bits()) as u32;
            continue;
        }
        for &w in g.raw_neighbors(u) {
            if membership.get(w) == Membership::InS {
                degrees.ext_in_s[j] += 1;
            }
        }
    }
}

/// Computes the EE-degrees `d_ext(S)(u)` for every `u ∈ ext(S)` (aligned with
/// `ext`). Deferred until Type-I rules actually need them. Hub members count
/// by word-parallel AND, exactly like [`compute_degrees`].
pub fn compute_ee_degrees(g: &LocalGraph, ext: &[u32], membership: &MembershipTable) -> Vec<u32> {
    let mut ee = Vec::new();
    compute_ee_degrees_into(g, ext, membership, &mut ee);
    ee
}

/// Allocation-free core of [`compute_ee_degrees`]: refills `ee` in place.
pub fn compute_ee_degrees_into(
    g: &LocalGraph,
    ext: &[u32],
    membership: &MembershipTable,
    ee: &mut Vec<u32>,
) {
    ee.clear();
    ee.extend(ext.iter().map(|&u| {
        if let Some(row) = g.hub_row(u) {
            perf::count_intersections(1);
            return row.intersection_count(membership.ext_bits()) as u32;
        }
        g.raw_neighbors(u)
            .iter()
            .filter(|&&w| membership.get(w) == Membership::InExt)
            .count() as u32
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcm_graph::{Graph, VertexId};

    fn figure4_local() -> LocalGraph {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5),
            (5, 6),
            (2, 6),
            (3, 7),
            (7, 8),
            (3, 8),
        ];
        let g = Graph::from_edges(9, edges.iter().copied()).unwrap();
        let all: Vec<VertexId> = g.vertices().collect();
        LocalGraph::from_induced(&g, &all)
    }

    #[test]
    fn degrees_of_figure4_candidate() {
        let g = figure4_local();
        // S = {a, b} = {0, 1}; ext = {c, d, e} = {2, 3, 4}.
        let s = vec![0u32, 1];
        let ext = vec![2u32, 3, 4];
        let (deg, membership) = compute_degrees(&g, &s, &ext);
        // d_S(a) = 1 (b), d_S(b) = 1 (a).
        assert_eq!(deg.s_in_s, vec![1, 1]);
        // d_ext(a) = 3 (c, d, e); d_ext(b) = 2 (c, e).
        assert_eq!(deg.s_in_ext, vec![3, 2]);
        // d_S(c) = 2 (a, b); d_S(d) = 1 (a); d_S(e) = 2 (a, b).
        assert_eq!(deg.ext_in_s, vec![2, 1, 2]);
        // EE: d_ext(c) = 2 (d, e); d_ext(d) = 2 (c, e); d_ext(e) = 2 (c, d).
        let ee = compute_ee_degrees(&g, &ext, &membership);
        assert_eq!(ee, vec![2, 2, 2]);
    }

    #[test]
    fn dmin_and_sums() {
        let g = figure4_local();
        let s = vec![0u32, 1];
        let ext = vec![2u32, 3, 4];
        let (deg, _) = compute_degrees(&g, &s, &ext);
        assert_eq!(deg.dmin(), Some(3)); // min(1+3, 1+2) = 3
        assert_eq!(deg.dmin_s(), Some(1));
        assert_eq!(deg.sum_s_in_s(), 2);
        assert_eq!(deg.sorted_ext_in_s_desc(), vec![2, 2, 1]);
    }

    #[test]
    fn empty_candidate_sides() {
        let g = figure4_local();
        let (deg, membership) = compute_degrees(&g, &[], &[0, 1, 2]);
        assert_eq!(deg.dmin(), None);
        assert_eq!(deg.dmin_s(), None);
        assert_eq!(deg.sum_s_in_s(), 0);
        assert_eq!(deg.ext_in_s, vec![0, 0, 0]);
        let ee = compute_ee_degrees(&g, &[0, 1, 2], &membership);
        // Within {a,b,c} all three edges exist.
        assert_eq!(ee, vec![2, 2, 2]);

        let (deg, _) = compute_degrees(&g, &[0, 1], &[]);
        assert_eq!(deg.dmin(), Some(1));
        assert!(deg.ext_in_s.is_empty());
    }

    #[test]
    fn membership_table_reports_sides() {
        let g = figure4_local();
        let (_, membership) = compute_degrees(&g, &[0], &[3, 4]);
        assert_eq!(membership.get(0), Membership::InS);
        assert_eq!(membership.get(3), Membership::InExt);
        assert_eq!(membership.get(7), Membership::Neither);
    }

    #[test]
    fn hub_word_parallel_counting_matches_list_walk() {
        let mut indexed = figure4_local();
        indexed.build_hub_index(qcm_graph::IndexSpec::Threshold(0));
        let plain = figure4_local();
        let cases: &[(&[u32], &[u32])] = &[
            (&[0, 1], &[2, 3, 4]),
            (&[], &[0, 1, 2]),
            (&[0, 1], &[]),
            (&[3], &[7, 8]),
            (&[0, 1, 2, 3, 4], &[5, 6, 7, 8]),
        ];
        for (s, ext) in cases {
            let (a, ma) = compute_degrees(&indexed, s, ext);
            let (b, mb) = compute_degrees(&plain, s, ext);
            assert_eq!(a, b, "degrees for S={s:?}, ext={ext:?}");
            assert_eq!(
                compute_ee_degrees(&indexed, ext, &ma),
                compute_ee_degrees(&plain, ext, &mb),
                "EE degrees for S={s:?}, ext={ext:?}"
            );
        }
        // With a peeled vertex: stale hub-row bits must not be counted.
        let mut peeled_indexed = indexed.clone();
        peeled_indexed.remove_vertex(4);
        let mut peeled_plain = plain.clone();
        peeled_plain.remove_vertex(4);
        let (a, _) = compute_degrees(&peeled_indexed, &[0, 1], &[2, 3]);
        let (b, _) = compute_degrees(&peeled_plain, &[0, 1], &[2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn degrees_ignore_vertices_outside_candidate() {
        let g = figure4_local();
        // S = {d}; ext = {h}. d is adjacent to a, c, e, h, i but only h counts.
        let (deg, _) = compute_degrees(&g, &[3], &[7]);
        assert_eq!(deg.s_in_s, vec![0]);
        assert_eq!(deg.s_in_ext, vec![1]);
        assert_eq!(deg.ext_in_s, vec![1]);
    }
}
