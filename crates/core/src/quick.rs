//! Quick-style baseline miner.
//!
//! The paper's Section 1/4 identifies two weaknesses of the state-of-the-art
//! Quick algorithm [Liu & Wong, 2008] that the proposed algorithm fixes:
//!
//! 1. Quick does **not** apply the size-threshold (k-core) preprocessing of
//!    Theorem 2, which the paper finds to be "a dominating factor to scale
//!    beyond a small graph" (topic T1);
//! 2. Quick can **miss results**: it does not examine `G(S')` when the
//!    diameter shrink empties `ext(S')` (Algorithm 2 lines 13–16), and it does
//!    not examine `G(S)` before a critical-vertex expansion (topic T5).
//!
//! This module provides that baseline so the benchmarks can reproduce both the
//! performance gap and the missed-result behaviour. It deliberately reuses the
//! same code paths with the omissions toggled on, so any difference observed
//! is attributable to exactly those two design decisions.

use crate::config::PruneConfig;
use crate::params::MiningParams;
use crate::serial::{MiningOutput, SerialMiner};
use qcm_graph::Graph;

/// Mines with the Quick-style baseline: no k-core preprocessing and with
/// Quick's result-missing omissions enabled.
pub fn quick_mine(graph: &Graph, params: MiningParams) -> MiningOutput {
    SerialMiner::with_config(params, PruneConfig::all_enabled().without("size_threshold"))
        .emulating_quick_omissions(true)
        .mine(graph)
}

/// Mines with Quick's pruning behaviour but *with* the k-core preprocessing —
/// useful for isolating how much of the improvement comes from Theorem 2
/// alone (the paper's T1 discussion).
pub fn quick_mine_with_kcore(graph: &Graph, params: MiningParams) -> MiningOutput {
    SerialMiner::new(params)
        .emulating_quick_omissions(true)
        .mine(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::SerialMiner;

    fn figure4() -> Graph {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5),
            (5, 6),
            (2, 6),
            (3, 7),
            (7, 8),
            (3, 8),
        ];
        Graph::from_edges(9, edges.iter().copied()).unwrap()
    }

    #[test]
    fn quick_never_reports_results_the_fixed_algorithm_lacks() {
        let g = figure4();
        for (gamma, min_size) in [(0.6, 4), (0.9, 4), (0.8, 3)] {
            let params = MiningParams::new(gamma, min_size);
            let fixed = SerialMiner::new(params).mine(&g);
            let quick = quick_mine(&g, params);
            for r in quick.maximal.iter() {
                assert!(
                    fixed.maximal.contains(r),
                    "quick reported {r:?} missing from the fixed algorithm (γ={gamma})"
                );
            }
            assert!(quick.maximal.len() <= fixed.maximal.len());
        }
    }

    #[test]
    fn quick_skips_kcore_preprocessing() {
        let g = figure4();
        let params = MiningParams::new(0.9, 4);
        let quick = quick_mine(&g, params);
        assert_eq!(quick.kcore_vertices, g.num_vertices());
        assert_eq!(quick.stats.kcore_removed, 0);
        let with_kcore = quick_mine_with_kcore(&g, params);
        assert!(with_kcore.kcore_vertices < g.num_vertices());
    }

    #[test]
    fn quick_explores_at_least_as_many_nodes_without_kcore() {
        // Without the k-core shrink Quick spawns roots from peeled-away
        // vertices too, so its search is never smaller.
        let g = figure4();
        let params = MiningParams::new(0.9, 4);
        let quick = quick_mine(&g, params);
        let fixed = SerialMiner::new(params).mine(&g);
        assert!(quick.stats.nodes_expanded >= fixed.stats.nodes_expanded);
    }
}
