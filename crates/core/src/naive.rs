//! Brute-force oracle for maximal quasi-clique mining.
//!
//! For graphs small enough to enumerate every vertex subset (≤ ~20 vertices),
//! this module computes the exact set of maximal γ-quasi-cliques by
//! definition. It is the ground truth that the recursive miner, the Quick
//! baseline and the parallel engine are validated against in tests — the
//! central correctness claim of the paper is precisely that its algorithm
//! (unlike Quick) never misses a result.

use crate::maximality::remove_non_maximal;
use crate::params::MiningParams;
use crate::quasiclique::is_quasi_clique;
use crate::results::QuasiCliqueSet;
use qcm_graph::{Graph, VertexId};

/// Maximum graph size the oracle accepts (2^24 subsets would already take
/// minutes; the tests stay well below this).
pub const MAX_ORACLE_VERTICES: usize = 24;

/// Enumerates every subset of `g`'s vertices and returns all *valid* (size ≥
/// τ_size) γ-quasi-cliques, without the maximality filter.
///
/// # Panics
/// Panics if the graph has more than [`MAX_ORACLE_VERTICES`] vertices.
pub fn all_valid_quasi_cliques(g: &Graph, params: &MiningParams) -> QuasiCliqueSet {
    let n = g.num_vertices();
    assert!(
        n <= MAX_ORACLE_VERTICES,
        "naive oracle limited to {MAX_ORACLE_VERTICES} vertices, got {n}"
    );
    let mut results = QuasiCliqueSet::new();
    if n == 0 {
        return results;
    }
    let mut members: Vec<VertexId> = Vec::with_capacity(n);
    for mask in 1u32..(1u32 << n) {
        if (mask.count_ones() as usize) < params.min_size {
            continue;
        }
        members.clear();
        for v in 0..n {
            if mask & (1 << v) != 0 {
                members.push(VertexId::from(v));
            }
        }
        if is_quasi_clique(g, &members, params) {
            results.insert(members.clone());
        }
    }
    results
}

/// Returns the exact set of **maximal** valid γ-quasi-cliques of `g` by brute
/// force (Definition 2 + Definition 3 of the paper).
pub fn maximal_quasi_cliques(g: &Graph, params: &MiningParams) -> QuasiCliqueSet {
    remove_non_maximal(all_valid_quasi_cliques(g, params))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<VertexId> {
        raw.iter().map(|&v| VertexId::new(v)).collect()
    }

    fn figure4() -> Graph {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5),
            (5, 6),
            (2, 6),
            (3, 7),
            (7, 8),
            (3, 8),
        ];
        Graph::from_edges(9, edges.iter().copied()).unwrap()
    }

    #[test]
    fn oracle_on_figure4_gamma_point_six() {
        let g = figure4();
        let params = MiningParams::new(0.6, 5);
        let maximal = maximal_quasi_cliques(&g, &params);
        assert_eq!(maximal.len(), 1);
        assert!(maximal.contains(&ids(&[0, 1, 2, 3, 4])));
    }

    #[test]
    fn oracle_on_figure4_gamma_point_nine() {
        let g = figure4();
        let params = MiningParams::new(0.9, 4);
        let maximal = maximal_quasi_cliques(&g, &params);
        assert_eq!(maximal.len(), 2);
        assert!(maximal.contains(&ids(&[0, 1, 2, 4])));
        assert!(maximal.contains(&ids(&[0, 2, 3, 4])));
    }

    #[test]
    fn all_valid_includes_non_maximal_sets() {
        let g = figure4();
        let params = MiningParams::new(0.6, 4);
        let all = all_valid_quasi_cliques(&g, &params);
        let maximal = maximal_quasi_cliques(&g, &params);
        assert!(all.len() > maximal.len());
        for m in maximal.iter() {
            assert!(all.contains(m));
        }
    }

    #[test]
    fn clique_oracle() {
        let edges: Vec<(u32, u32)> = (0..6u32)
            .flat_map(|i| ((i + 1)..6).map(move |j| (i, j)))
            .collect();
        let g = Graph::from_edges(6, edges.iter().copied()).unwrap();
        let params = MiningParams::new(1.0, 3);
        let maximal = maximal_quasi_cliques(&g, &params);
        assert_eq!(maximal.len(), 1);
        assert!(maximal.contains(&ids(&[0, 1, 2, 3, 4, 5])));
    }

    #[test]
    fn empty_and_sparse_graphs() {
        let g = Graph::empty(4);
        let params = MiningParams::new(0.5, 2);
        assert!(maximal_quasi_cliques(&g, &params).is_empty());
        let g = Graph::from_edges(4, [(0, 1)]).unwrap();
        let maximal = maximal_quasi_cliques(&g, &params);
        assert_eq!(maximal.len(), 1);
        assert!(maximal.contains(&ids(&[0, 1])));
    }

    #[test]
    #[should_panic(expected = "naive oracle limited")]
    fn oracle_rejects_large_graphs() {
        let g = Graph::empty(30);
        let params = MiningParams::new(0.5, 2);
        all_valid_quasi_cliques(&g, &params);
    }
}
