//! Type-I and Type-II pruning rules (P3–P5 of the paper).
//!
//! * **Type I** rules prune a vertex `u` from `ext(S)` — Theorems 3 (degree),
//!   5 (upper bound) and 7 (lower bound).
//! * **Type II** rules prune the candidate `S` together with (some of) its
//!   extensions — Theorems 4 (degree), 6 (upper bound) and 8 (lower bound).
//!
//! The one subtlety the paper stresses (topic T3) is Theorem 4 Condition (i):
//! it prunes every *strict* extension of `S` but not `S` itself, so the caller
//! must still examine `G(S)` before abandoning the subtree. Every other
//! Type-II rule prunes `S` as well.

use crate::config::PruneConfig;
use crate::degrees::Degrees;
use crate::params::MiningParams;

/// Result of evaluating the Type-II rules on a candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Type2Outcome {
    /// No Type-II rule fired.
    None,
    /// Theorem 4 Condition (i) fired: strict extensions of `S` are pruned, but
    /// `G(S)` itself must still be checked as a potential result.
    PruneExtensionsKeepS,
    /// A rule covering `S' = S` fired (Theorem 4 Condition (ii), Theorem 6, or
    /// Theorem 8): `S` and all extensions are pruned.
    PruneAll,
}

/// Evaluates the Type-II rules (Theorems 4, 6, 8) over every vertex of `S`.
///
/// `us`/`ls` are the bounds computed by [`crate::bounds`] (pass `None` when
/// the corresponding rule family is disabled or the bound was not computed).
pub fn check_type2(
    params: &MiningParams,
    config: &PruneConfig,
    degrees: &Degrees,
    ext_len: usize,
    us: Option<usize>,
    ls: Option<usize>,
) -> Type2Outcome {
    let s_len = degrees.s_in_s.len();
    if s_len == 0 {
        return Type2Outcome::None;
    }
    let gamma = &params.gamma;
    let mut extensions_only = false;
    for i in 0..s_len {
        let ds = degrees.s_in_s[i] as usize;
        let dext = degrees.s_in_ext[i] as usize;
        if config.degree {
            // Theorem 4 Condition (ii): d_S(v) + d_ext(v) < ⌈γ(|S| − 1 + d_ext(v))⌉
            // prunes S and every extension.
            if ds + dext < gamma.ceil_mul(s_len - 1 + dext) {
                return Type2Outcome::PruneAll;
            }
            // Theorem 4 Condition (i): d_S(v) < ⌈γ·|S|⌉ while v has no more
            // extension neighbors to gain — strict extensions cannot fix v's
            // degree, but S itself may still be a quasi-clique.
            if dext == 0 && ds < gamma.ceil_mul(s_len) {
                extensions_only = true;
            }
        }
        if config.upper_bound {
            if let Some(us) = us {
                // Theorem 6: d_S(v) + U_S < ⌈γ(|S| + U_S − 1)⌉.
                if ds + us < gamma.ceil_mul(s_len + us - 1) {
                    return Type2Outcome::PruneAll;
                }
            }
        }
        if config.lower_bound {
            if let Some(ls) = ls {
                // Theorem 8: d_S(v) + d_ext(v) < ⌈γ(|S| + L_S − 1)⌉.
                if ds + dext < gamma.ceil_mul(s_len + ls - 1) {
                    return Type2Outcome::PruneAll;
                }
            }
        }
    }
    let _ = ext_len;
    if extensions_only {
        Type2Outcome::PruneExtensionsKeepS
    } else {
        Type2Outcome::None
    }
}

/// Evaluates the Type-I rules (Theorems 3, 5, 7) for a single extension vertex
/// with SE-degree `d_s_u` and EE-degree `d_ext_u`. Returns true if the vertex
/// can be pruned from `ext(S)`.
pub fn type1_prunable(
    params: &MiningParams,
    config: &PruneConfig,
    s_len: usize,
    d_s_u: usize,
    d_ext_u: usize,
    us: Option<usize>,
    ls: Option<usize>,
) -> bool {
    let gamma = &params.gamma;
    if config.degree {
        // Theorem 3: d_S(u) + d_ext(u) < ⌈γ(|S| + d_ext(u))⌉.
        if d_s_u + d_ext_u < gamma.ceil_mul(s_len + d_ext_u) {
            return true;
        }
    }
    if config.upper_bound {
        if let Some(us) = us {
            // Theorem 5: d_S(u) + U_S − 1 < ⌈γ(|S| + U_S − 1)⌉.
            if d_s_u + us - 1 < gamma.ceil_mul(s_len + us - 1) {
                return true;
            }
        }
    }
    if config.lower_bound {
        if let Some(ls) = ls {
            // Theorem 7: d_S(u) + d_ext(u) < ⌈γ(|S| + L_S − 1)⌉.
            if d_s_u + d_ext_u < gamma.ceil_mul(s_len + ls - 1) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degrees::compute_degrees;
    use qcm_graph::{Graph, LocalGraph, VertexId};

    fn figure4_local() -> LocalGraph {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5),
            (5, 6),
            (2, 6),
            (3, 7),
            (7, 8),
            (3, 8),
        ];
        let g = Graph::from_edges(9, edges.iter().copied()).unwrap();
        let all: Vec<VertexId> = g.vertices().collect();
        LocalGraph::from_induced(&g, &all)
    }

    fn all_rules() -> PruneConfig {
        PruneConfig::all_enabled()
    }

    #[test]
    fn theorem4_condition_ii_prunes_everything() {
        let g = figure4_local();
        // S = {f, i}: f and i are not adjacent and share no candidate help
        // (ext empty). With γ = 0.9: d_S + d_ext = 0 < ⌈0.9·(1 + 0)⌉ = 1.
        let params = MiningParams::new(0.9, 2);
        let (deg, _) = compute_degrees(&g, &[5, 8], &[]);
        assert_eq!(
            check_type2(&params, &all_rules(), &deg, 0, None, None),
            Type2Outcome::PruneAll
        );
    }

    #[test]
    fn theorem4_condition_i_keeps_s_itself() {
        // S = {a, b, c, e} in Figure 4 with γ = 0.9 and ext = {}: every member
        // has d_S ≥ 2 but needs ⌈0.9·3⌉ = 3... b has d_S = 3 (a, c, e),
        // a has 3, c has 3, e has 3 → actually a valid quasi-clique.
        // Use S = {a, b, d} instead: b–d is not an edge. d_S(b) = 1,
        // d_ext(b) = 0. Condition (ii): 1 < ⌈0.9·2⌉ = 2 → PruneAll.
        // To hit Condition (i) without (ii) we need d_S(v) ≥ ⌈γ(|S|−1)⌉ but
        // d_S(v) < ⌈γ|S|⌉ and d_ext(v) = 0: take S = {a, b, c, e} with
        // γ = 0.95: required-in-S is ⌈0.95·3⌉ = 3 (satisfied, all have 3) but
        // ⌈0.95·4⌉ = 4 > 3, so extensions are pruned while S itself survives.
        let g = figure4_local();
        let params = MiningParams::new(0.95, 2);
        let (deg, _) = compute_degrees(&g, &[0, 1, 2, 4], &[]);
        assert_eq!(
            check_type2(&params, &all_rules(), &deg, 0, None, None),
            Type2Outcome::PruneExtensionsKeepS
        );
    }

    #[test]
    fn healthy_candidate_is_not_type2_pruned() {
        let g = figure4_local();
        // S = {a, b} with ext = {c, d, e} and γ = 0.6 is perfectly viable.
        let params = MiningParams::new(0.6, 2);
        let (deg, _) = compute_degrees(&g, &[0, 1], &[2, 3, 4]);
        assert_eq!(
            check_type2(&params, &all_rules(), &deg, 3, Some(3), Some(0)),
            Type2Outcome::None
        );
    }

    #[test]
    fn theorem6_upper_bound_rule_fires() {
        let g = figure4_local();
        // S = {b, d} (non-adjacent), ext = {a, c, e}. With γ = 0.9 and a small
        // U_S, b and d can never reach the required degree.
        let params = MiningParams::new(0.9, 2);
        let (deg, _) = compute_degrees(&g, &[1, 3], &[0, 2, 4]);
        // With U_S = 1: d_S(b) + 1 = 1 < ⌈0.9·2⌉ = 2 → PruneAll.
        assert_eq!(
            check_type2(&params, &all_rules(), &deg, 3, Some(1), None),
            Type2Outcome::PruneAll
        );
    }

    #[test]
    fn theorem8_lower_bound_rule_fires() {
        let g = figure4_local();
        // S = {f, g} (an edge) with ext = {} won't trigger Thm 4(ii) for
        // γ = 0.5 (1 ≥ ⌈0.5·1⌉ = 1), but if a lower bound L_S = 3 is imposed
        // the needed degree ⌈0.5·4⌉ = 2 exceeds d_S + d_ext = 1.
        let params = MiningParams::new(0.5, 2);
        let (deg, _) = compute_degrees(&g, &[5, 6], &[]);
        assert_eq!(
            check_type2(&params, &all_rules(), &deg, 0, None, Some(3)),
            Type2Outcome::PruneAll
        );
        // Without the lower bound the candidate survives.
        assert_eq!(
            check_type2(&params, &all_rules(), &deg, 0, None, None),
            Type2Outcome::None
        );
    }

    #[test]
    fn disabled_rules_do_not_fire() {
        let g = figure4_local();
        let params = MiningParams::new(0.9, 2);
        let (deg, _) = compute_degrees(&g, &[5, 8], &[]);
        let config = PruneConfig::none();
        assert_eq!(
            check_type2(&params, &config, &deg, 0, Some(1), Some(5)),
            Type2Outcome::None
        );
        assert!(!type1_prunable(&params, &config, 2, 0, 0, Some(1), Some(5)));
    }

    #[test]
    fn theorem3_type1_degree_pruning() {
        // |S| = 3, γ = 0.9: a candidate u with d_S(u) = 1 and d_ext(u) = 2
        // has 3 < ⌈0.9·5⌉ = 5 → prunable.
        let params = MiningParams::new(0.9, 2);
        assert!(type1_prunable(&params, &all_rules(), 3, 1, 2, None, None));
        // A fully connected u is not prunable: d_S = 3, d_ext = 2 → 5 ≥ 5.
        assert!(!type1_prunable(&params, &all_rules(), 3, 3, 2, None, None));
    }

    #[test]
    fn theorem5_and_7_type1_rules() {
        let params = MiningParams::new(0.8, 2);
        // Theorem 5 with |S| = 4, U_S = 2: u needs d_S(u) + 1 ≥ ⌈0.8·5⌉ = 4,
        // so d_S(u) = 2 is prunable even if its EE-degree is huge.
        assert!(type1_prunable(
            &params,
            &all_rules(),
            4,
            2,
            10,
            Some(2),
            None
        ));
        assert!(!type1_prunable(
            &params,
            &all_rules(),
            4,
            4,
            10,
            Some(2),
            None
        ));
        // Theorem 7 with L_S = 4: u needs d_S + d_ext ≥ ⌈0.8·7⌉ = 6.
        assert!(type1_prunable(
            &params,
            &all_rules(),
            4,
            3,
            2,
            None,
            Some(4)
        ));
        assert!(!type1_prunable(
            &params,
            &all_rules(),
            4,
            3,
            3,
            None,
            Some(4)
        ));
    }

    #[test]
    fn empty_s_is_never_type2_pruned() {
        let g = figure4_local();
        let params = MiningParams::new(0.9, 2);
        let (deg, _) = compute_degrees(&g, &[], &[0, 1]);
        assert_eq!(
            check_type2(&params, &all_rules(), &deg, 2, None, None),
            Type2Outcome::None
        );
    }
}
