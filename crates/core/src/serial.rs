//! The serial mining driver.
//!
//! [`SerialMiner`] is the single-threaded reference implementation of the
//! paper's algorithm: shrink the input graph to its k-core (P2 / topic T1),
//! spawn one set-enumeration root per surviving vertex (`S = {v}`,
//! `ext(S) = B_{>v}(v)`), run the recursive miner (Algorithm 2) on each, and
//! finally remove non-maximal results. The parallel engine in `qcm-parallel`
//! produces exactly the same result set; tests assert that equivalence.

use std::time::{Duration, Instant};

use crate::config::PruneConfig;
use crate::context::MiningContext;
use crate::maximality::remove_non_maximal;
use crate::params::MiningParams;
use crate::recursive_mine::{recursive_mine, two_hop_local};
use crate::results::QuasiCliqueSet;
use crate::stats::MiningStats;
use qcm_graph::kcore::k_core_vertices;
use qcm_graph::{Graph, LocalGraph, VertexId};

/// Everything a mining run produces.
#[derive(Clone, Debug)]
pub struct MiningOutput {
    /// The final, maximal quasi-cliques (global vertex ids of the input graph).
    pub maximal: QuasiCliqueSet,
    /// Number of raw (possibly non-maximal, possibly duplicate) reports before
    /// post-processing.
    pub raw_reported: u64,
    /// Aggregated pruning/search statistics.
    pub stats: MiningStats,
    /// Wall-clock time of the mining phase (excludes graph loading).
    pub elapsed: Duration,
    /// Number of vertices that survived the k-core preprocessing (equal to the
    /// input size when the size-threshold rule is disabled).
    pub kcore_vertices: usize,
}

/// Single-threaded maximal quasi-clique miner.
#[derive(Clone, Debug)]
pub struct SerialMiner {
    params: MiningParams,
    config: PruneConfig,
    emulate_quick_omissions: bool,
}

impl SerialMiner {
    /// Creates a miner with the default (fully enabled) pruning configuration.
    pub fn new(params: MiningParams) -> Self {
        SerialMiner {
            params,
            config: PruneConfig::default(),
            emulate_quick_omissions: false,
        }
    }

    /// Creates a miner with an explicit pruning configuration (used by the
    /// ablation benchmarks).
    pub fn with_config(params: MiningParams, config: PruneConfig) -> Self {
        SerialMiner {
            params,
            config,
            emulate_quick_omissions: false,
        }
    }

    /// Enables emulation of the original Quick algorithm's result-missing
    /// omissions (used only by the Quick baseline).
    pub fn emulating_quick_omissions(mut self, enabled: bool) -> Self {
        self.emulate_quick_omissions = enabled;
        self
    }

    /// The mining parameters this miner was built with.
    pub fn params(&self) -> &MiningParams {
        &self.params
    }

    /// Mines all maximal γ-quasi-cliques of `graph` with at least τ_size
    /// vertices.
    pub fn mine(&self, graph: &Graph) -> MiningOutput {
        let start = Instant::now();
        let mut stats = MiningStats::new();

        // (T1) Size-threshold preprocessing: shrink to the k-core.
        let survivors: Vec<VertexId> = if self.config.size_threshold {
            let k = self.params.kcore_threshold();
            let kept = k_core_vertices(graph, k);
            stats.kcore_removed += (graph.num_vertices() - kept.len()) as u64;
            kept
        } else {
            graph.vertices().collect()
        };
        let kcore_vertices = survivors.len();

        let mut sink = QuasiCliqueSet::new();
        if !survivors.is_empty() {
            let work = LocalGraph::from_induced(graph, &survivors);
            // Spawn one root per surviving vertex, in id order.
            for v in 0..work.capacity() as u32 {
                let mut ctx =
                    MiningContext::with_config(&work, self.params, self.config, &mut sink);
                ctx.emulate_quick_omissions = self.emulate_quick_omissions;
                ctx.stats.tasks_processed += 1;
                let mut ext: Vec<u32> =
                    if self.config.diameter && self.params.gamma.diameter_two_applies() {
                        two_hop_local(&work, v)
                            .into_iter()
                            .filter(|&u| u > v)
                            .collect()
                    } else {
                        ((v + 1)..work.capacity() as u32).collect()
                    };
                let s = vec![v];
                recursive_mine(&mut ctx, &s, &mut ext);
                stats.merge(&ctx.stats);
            }
        }

        let raw_reported = stats.results_reported;
        let maximal = remove_non_maximal(sink);
        MiningOutput {
            maximal,
            raw_reported,
            stats,
            elapsed: start.elapsed(),
            kcore_vertices,
        }
    }
}

/// Convenience function: mines `graph` with the default configuration.
pub fn mine_serial(graph: &Graph, params: MiningParams) -> MiningOutput {
    SerialMiner::new(params).mine(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn figure4() -> Graph {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5),
            (5, 6),
            (2, 6),
            (3, 7),
            (7, 8),
            (3, 8),
        ];
        Graph::from_edges(9, edges.iter().copied()).unwrap()
    }

    #[test]
    fn serial_miner_matches_oracle_on_figure4() {
        let g = figure4();
        for (gamma, min_size) in [(0.6, 5), (0.9, 4), (0.7, 3), (0.5, 4), (1.0, 3)] {
            let params = MiningParams::new(gamma, min_size);
            let mined = mine_serial(&g, params);
            let oracle = naive::maximal_quasi_cliques(&g, &params);
            assert_eq!(
                mined.maximal, oracle,
                "mismatch at gamma={gamma}, min_size={min_size}"
            );
        }
    }

    #[test]
    fn kcore_preprocessing_shrinks_the_graph() {
        let g = figure4();
        // γ = 0.9, τ_size = 4 → k = 3; the periphery (f, g, h, i) is peeled.
        let params = MiningParams::new(0.9, 4);
        let out = mine_serial(&g, params);
        assert_eq!(out.kcore_vertices, 5);
        assert_eq!(out.stats.kcore_removed, 4);
        assert!(out.raw_reported >= out.maximal.len() as u64);
    }

    #[test]
    fn disabling_size_threshold_keeps_all_vertices() {
        let g = figure4();
        let params = MiningParams::new(0.9, 4);
        let miner =
            SerialMiner::with_config(params, PruneConfig::all_enabled().without("size_threshold"));
        let out = miner.mine(&g);
        assert_eq!(out.kcore_vertices, 9);
        // Result set unchanged.
        let default_out = mine_serial(&g, params);
        assert_eq!(out.maximal, default_out.maximal);
    }

    #[test]
    fn no_results_when_thresholds_are_too_strict() {
        let g = figure4();
        let params = MiningParams::new(0.95, 6);
        let out = mine_serial(&g, params);
        assert!(out.maximal.is_empty());
        assert_eq!(out.elapsed.as_secs(), 0);
    }

    #[test]
    fn quick_emulation_is_a_subset_of_the_fixed_algorithm() {
        let g = figure4();
        let params = MiningParams::new(0.9, 4);
        let fixed = mine_serial(&g, params);
        let quick = SerialMiner::new(params)
            .emulating_quick_omissions(true)
            .mine(&g);
        for r in quick.maximal.iter() {
            assert!(fixed.maximal.contains(r));
        }
    }

    #[test]
    fn stats_accumulate_across_spawned_roots() {
        let g = figure4();
        let params = MiningParams::new(0.6, 4);
        let out = mine_serial(&g, params);
        assert!(out.stats.tasks_processed >= 1);
        assert!(out.stats.nodes_expanded > 0);
    }
}
