//! The serial mining driver.
//!
//! [`SerialMiner`] is the single-threaded reference implementation of the
//! paper's algorithm: shrink the input graph to its k-core (P2 / topic T1),
//! spawn one set-enumeration root per surviving vertex (`S = {v}`,
//! `ext(S) = B_{>v}(v)`), run the recursive miner (Algorithm 2) on each, and
//! finally remove non-maximal results. The parallel engine in `qcm-parallel`
//! produces exactly the same result set; tests assert that equivalence.

use qcm_obs::clock::Instant;
use std::time::Duration;

use crate::cancel::{CancelToken, RunOutcome};
use crate::config::PruneConfig;
use crate::context::MiningContext;
use crate::maximality::remove_non_maximal;
use crate::params::MiningParams;
use crate::recursive_mine::{recursive_mine, two_hop_local};
use crate::results::{QuasiCliqueSet, QuasiCliqueSink};
use crate::scratch::{MiningScratch, ScratchMode};
use crate::stats::MiningStats;
use qcm_graph::kcore::k_core_vertices;
use qcm_graph::{Graph, IndexSpec, LocalGraph, VertexId};

/// Everything a mining run produces.
#[derive(Clone, Debug)]
pub struct MiningOutput {
    /// The final, maximal quasi-cliques (global vertex ids of the input graph).
    pub maximal: QuasiCliqueSet,
    /// Number of raw (possibly non-maximal, possibly duplicate) reports before
    /// post-processing.
    pub raw_reported: u64,
    /// Aggregated pruning/search statistics.
    pub stats: MiningStats,
    /// Wall-clock time of the mining phase (excludes graph loading).
    pub elapsed: Duration,
    /// Number of vertices that survived the k-core preprocessing (equal to the
    /// input size when the size-threshold rule is disabled).
    pub kcore_vertices: usize,
    /// Whether the run completed or was interrupted (cancellation/deadline).
    /// An interrupted run's `maximal` holds the valid quasi-cliques found
    /// before the interruption; some may be non-maximal in the full graph (a
    /// completed run could replace them with supersets).
    pub outcome: RunOutcome,
}

/// Single-threaded maximal quasi-clique miner.
#[derive(Clone, Debug)]
pub struct SerialMiner {
    params: MiningParams,
    config: PruneConfig,
    emulate_quick_omissions: bool,
    cancel: CancelToken,
    index: IndexSpec,
    scratch_mode: ScratchMode,
}

impl SerialMiner {
    /// Creates a miner with the default (fully enabled) pruning configuration.
    pub fn new(params: MiningParams) -> Self {
        SerialMiner {
            params,
            config: PruneConfig::default(),
            emulate_quick_omissions: false,
            cancel: CancelToken::never(),
            index: IndexSpec::Auto,
            scratch_mode: ScratchMode::Pooled,
        }
    }

    /// Creates a miner with an explicit pruning configuration (used by the
    /// ablation benchmarks).
    pub fn with_config(params: MiningParams, config: PruneConfig) -> Self {
        SerialMiner {
            params,
            config,
            emulate_quick_omissions: false,
            cancel: CancelToken::never(),
            index: IndexSpec::Auto,
            scratch_mode: ScratchMode::Pooled,
        }
    }

    /// Enables emulation of the original Quick algorithm's result-missing
    /// omissions (used only by the Quick baseline).
    pub fn emulating_quick_omissions(mut self, enabled: bool) -> Self {
        self.emulate_quick_omissions = enabled;
        self
    }

    /// Attaches a cancellation token. The miner polls it between roots and at
    /// every expansion step; when it fires the run stops and the output is
    /// labelled with the firing reason.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Chooses the hybrid bitset neighborhood index built over the working
    /// subgraph (default [`IndexSpec::Auto`]). [`IndexSpec::Disabled`]
    /// reproduces the pure binary-search behaviour — results are identical
    /// either way, only the edge-query cost changes.
    pub fn with_index(mut self, index: IndexSpec) -> Self {
        self.index = index;
        self
    }

    /// Chooses the scratch-arena mode (default [`ScratchMode::Pooled`]).
    /// [`ScratchMode::Fresh`] reproduces the pre-arena
    /// allocation-per-tree-node behaviour — results are identical either way
    /// (property-tested), only the allocator traffic changes. The benchmark
    /// suite uses it as the within-binary baseline.
    pub fn with_scratch_mode(mut self, mode: ScratchMode) -> Self {
        self.scratch_mode = mode;
        self
    }

    /// The mining parameters this miner was built with.
    pub fn params(&self) -> &MiningParams {
        &self.params
    }

    /// Mines all maximal γ-quasi-cliques of `graph` with at least τ_size
    /// vertices.
    pub fn mine(&self, graph: &Graph) -> MiningOutput {
        self.mine_impl(graph, None)
    }

    /// Like [`SerialMiner::mine`], but additionally forwards every raw
    /// candidate report to `observer` live, as the search finds it. This is
    /// the streaming seam `qcm::Session::run_streaming` builds on.
    pub fn mine_with_observer(
        &self,
        graph: &Graph,
        observer: &mut dyn QuasiCliqueSink,
    ) -> MiningOutput {
        self.mine_impl(graph, Some(observer))
    }

    fn mine_impl(
        &self,
        graph: &Graph,
        mut observer: Option<&mut dyn QuasiCliqueSink>,
    ) -> MiningOutput {
        let start = Instant::now();
        let mut stats = MiningStats::new();

        // (T1) Size-threshold preprocessing: shrink to the k-core.
        let survivors: Vec<VertexId> = if self.config.size_threshold {
            let k = self.params.kcore_threshold();
            let kept = k_core_vertices(graph, k);
            stats.kcore_removed += (graph.num_vertices() - kept.len()) as u64;
            kept
        } else {
            graph.vertices().collect()
        };
        let kcore_vertices = survivors.len();

        let mut sink = QuasiCliqueSet::new();
        let mut interrupted = false;
        if !survivors.is_empty() {
            let mut work = LocalGraph::from_induced(graph, &survivors);
            // One hub-index build per run, amortised over every edge query
            // and degree recomputation of the whole search.
            work.build_hub_index(self.index);
            // One scratch arena for the whole run: the frames warmed up by
            // the first roots serve every later root without reallocating.
            let mut scratch = MiningScratch::new(self.scratch_mode);
            // Spawn one root per surviving vertex, in id order.
            for v in 0..work.capacity() as u32 {
                if self.cancel.is_cancelled() {
                    interrupted = true;
                    break;
                }
                // One mine_phase span per root vertex; the payload is the
                // root's local id.
                let _phase = qcm_obs::span_with(qcm_obs::SpanKind::MinePhase, v as u64);
                let mut tee = TeeSink {
                    set: &mut sink,
                    observer: observer.as_deref_mut(),
                };
                let mut ctx = MiningContext::with_config(&work, self.params, self.config, &mut tee);
                ctx.emulate_quick_omissions = self.emulate_quick_omissions;
                ctx.cancel = self.cancel.clone();
                ctx.scratch = std::mem::take(&mut scratch);
                ctx.stats.tasks_processed += 1;
                let mut ext: Vec<u32> =
                    if self.config.diameter && self.params.gamma.diameter_two_applies() {
                        two_hop_local(&work, v)
                            .into_iter()
                            .filter(|&u| u > v)
                            .collect()
                    } else {
                        ((v + 1)..work.capacity() as u32).collect()
                    };
                let s = vec![v];
                recursive_mine(&mut ctx, &s, &mut ext);
                scratch = std::mem::take(&mut ctx.scratch);
                stats.merge(&ctx.stats);
                interrupted |= ctx.interrupted;
            }
        }

        let raw_reported = stats.results_reported;
        let maximal = remove_non_maximal(sink);
        MiningOutput {
            maximal,
            raw_reported,
            stats,
            elapsed: start.elapsed(),
            kcore_vertices,
            // Label from what the search actually observed: a run that
            // explored everything stays Complete even if the deadline happens
            // to pass during post-processing. (A token never un-fires, so an
            // observed interruption always yields a non-Complete outcome
            // here.)
            outcome: if interrupted {
                self.cancel.run_outcome()
            } else {
                RunOutcome::Complete
            },
        }
    }
}

/// Feeds every raw report into the canonical result set and, when present, an
/// external observer.
struct TeeSink<'a, 'b> {
    set: &'a mut QuasiCliqueSet,
    observer: Option<&'a mut (dyn QuasiCliqueSink + 'b)>,
}

impl QuasiCliqueSink for TeeSink<'_, '_> {
    fn report(&mut self, members: Vec<VertexId>) {
        if let Some(observer) = self.observer.as_deref_mut() {
            observer.report(members.clone());
        }
        self.set.insert(members);
    }
}

/// Convenience function: mines `graph` with the default configuration.
#[deprecated(
    since = "0.2.0",
    note = "use the unified `qcm::Session` front door (Session::builder()…build()?.run(&graph)) \
            or `SerialMiner::new(params).mine(graph)` directly"
)]
pub fn mine_serial(graph: &Graph, params: MiningParams) -> MiningOutput {
    SerialMiner::new(params).mine(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn figure4() -> Graph {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5),
            (5, 6),
            (2, 6),
            (3, 7),
            (7, 8),
            (3, 8),
        ];
        Graph::from_edges(9, edges.iter().copied()).unwrap()
    }

    #[test]
    fn serial_miner_matches_oracle_on_figure4() {
        let g = figure4();
        for (gamma, min_size) in [(0.6, 5), (0.9, 4), (0.7, 3), (0.5, 4), (1.0, 3)] {
            let params = MiningParams::new(gamma, min_size);
            let mined = SerialMiner::new(params).mine(&g);
            let oracle = naive::maximal_quasi_cliques(&g, &params);
            assert_eq!(
                mined.maximal, oracle,
                "mismatch at gamma={gamma}, min_size={min_size}"
            );
        }
    }

    #[test]
    fn kcore_preprocessing_shrinks_the_graph() {
        let g = figure4();
        // γ = 0.9, τ_size = 4 → k = 3; the periphery (f, g, h, i) is peeled.
        let params = MiningParams::new(0.9, 4);
        let out = SerialMiner::new(params).mine(&g);
        assert_eq!(out.kcore_vertices, 5);
        assert_eq!(out.stats.kcore_removed, 4);
        assert!(out.raw_reported >= out.maximal.len() as u64);
    }

    #[test]
    fn disabling_size_threshold_keeps_all_vertices() {
        let g = figure4();
        let params = MiningParams::new(0.9, 4);
        let miner =
            SerialMiner::with_config(params, PruneConfig::all_enabled().without("size_threshold"));
        let out = miner.mine(&g);
        assert_eq!(out.kcore_vertices, 9);
        // Result set unchanged.
        let default_out = SerialMiner::new(params).mine(&g);
        assert_eq!(out.maximal, default_out.maximal);
    }

    #[test]
    fn no_results_when_thresholds_are_too_strict() {
        let g = figure4();
        let params = MiningParams::new(0.95, 6);
        let out = SerialMiner::new(params).mine(&g);
        assert!(out.maximal.is_empty());
        assert_eq!(out.elapsed.as_secs(), 0);
    }

    #[test]
    fn quick_emulation_is_a_subset_of_the_fixed_algorithm() {
        let g = figure4();
        let params = MiningParams::new(0.9, 4);
        let fixed = SerialMiner::new(params).mine(&g);
        let quick = SerialMiner::new(params)
            .emulating_quick_omissions(true)
            .mine(&g);
        for r in quick.maximal.iter() {
            assert!(fixed.maximal.contains(r));
        }
    }

    #[test]
    fn pre_cancelled_token_yields_empty_partial_output() {
        let g = figure4();
        let params = MiningParams::new(0.6, 5);
        let token = CancelToken::new();
        token.cancel();
        let out = SerialMiner::new(params).with_cancel(token).mine(&g);
        assert_eq!(out.outcome, RunOutcome::Cancelled);
        assert!(out.maximal.is_empty());
        assert_eq!(out.stats.nodes_expanded, 0);
    }

    #[test]
    fn zero_deadline_is_labelled_deadline_exceeded() {
        let g = figure4();
        let params = MiningParams::new(0.6, 5);
        let token = CancelToken::never().with_deadline(Some(Duration::ZERO));
        let out = SerialMiner::new(params).with_cancel(token).mine(&g);
        assert_eq!(out.outcome, RunOutcome::DeadlineExceeded);
        // A zero deadline deterministically explores nothing, so the partial
        // set is empty here. (In general an interrupted run may report sets a
        // complete run would have replaced with supersets.)
        assert!(out.maximal.is_empty());
        let full = SerialMiner::new(params).mine(&g);
        assert_eq!(full.outcome, RunOutcome::Complete);
    }

    #[test]
    fn fired_token_never_observed_by_the_search_stays_complete() {
        // γ = 0.95, τ_size = 6 → k = 5 peels the whole Figure 4 graph, so the
        // mining loop never runs and never observes the (already fired)
        // deadline token. The exploration is trivially exhaustive, so the
        // outcome must stay Complete — the label reflects what the search
        // observed, not the token's state at report-assembly time.
        let g = figure4();
        let params = MiningParams::new(0.95, 6);
        let token = CancelToken::never().with_deadline(Some(Duration::ZERO));
        let out = SerialMiner::new(params).with_cancel(token).mine(&g);
        assert_eq!(out.kcore_vertices, 0);
        assert_eq!(out.outcome, RunOutcome::Complete);
    }

    #[test]
    fn observer_sees_every_raw_report_live() {
        let g = figure4();
        let params = MiningParams::new(0.9, 4);
        let mut observed: Vec<Vec<VertexId>> = Vec::new();
        let out = SerialMiner::new(params).mine_with_observer(&g, &mut observed);
        assert_eq!(observed.len() as u64, out.raw_reported);
        assert!(out.raw_reported >= out.maximal.len() as u64);
        // Every maximal result was seen by the observer as a candidate.
        for r in out.maximal.iter() {
            assert!(observed.iter().any(|c| c == r));
        }
    }

    #[test]
    fn stats_accumulate_across_spawned_roots() {
        let g = figure4();
        let params = MiningParams::new(0.6, 4);
        let out = SerialMiner::new(params).mine(&g);
        assert!(out.stats.tasks_processed >= 1);
        assert!(out.stats.nodes_expanded > 0);
    }
}
