//! The workspace-wide typed error.
//!
//! Every fallible step of a `qcm::Session` run — builder validation, graph
//! loading, cancellation, deadline expiry, engine-side failures — maps to one
//! variant of [`QcmError`], so callers can match instead of parsing strings.

use crate::cancel::{CancelReason, RunOutcome};
use qcm_graph::GraphError;
use std::fmt;

/// Typed errors of the quasi-clique mining front door.
#[derive(Debug)]
pub enum QcmError {
    /// A configuration value failed validation (γ out of range, zero threads,
    /// unknown CLI flag, …).
    InvalidConfig(String),
    /// The input graph could not be loaded or constructed.
    GraphLoad(GraphError),
    /// The run was cancelled through its [`crate::CancelToken`].
    Cancelled,
    /// The run's deadline passed before the search space was exhausted.
    DeadlineExceeded,
    /// An engine/system-level failure (worker panic, result I/O, …).
    Engine(String),
}

impl QcmError {
    /// Maps a fired cancellation reason to its error variant.
    pub fn from_cancel(reason: CancelReason) -> Self {
        match reason {
            CancelReason::Cancelled => QcmError::Cancelled,
            CancelReason::DeadlineExceeded => QcmError::DeadlineExceeded,
        }
    }

    /// Maps a non-complete run outcome to its error variant; `Complete` has no
    /// error and returns `None`.
    pub fn from_outcome(outcome: RunOutcome) -> Option<Self> {
        match outcome {
            RunOutcome::Complete => None,
            RunOutcome::Cancelled => Some(QcmError::Cancelled),
            RunOutcome::DeadlineExceeded => Some(QcmError::DeadlineExceeded),
            RunOutcome::Faulted => Some(QcmError::Engine(
                "faults dropped part of the workload; results are partial".into(),
            )),
        }
    }
}

impl fmt::Display for QcmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QcmError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            QcmError::GraphLoad(e) => write!(f, "failed to load graph: {e}"),
            QcmError::Cancelled => write!(f, "mining run was cancelled"),
            QcmError::DeadlineExceeded => write!(f, "mining run hit its deadline"),
            QcmError::Engine(msg) => write!(f, "engine failure: {msg}"),
        }
    }
}

impl std::error::Error for QcmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QcmError::GraphLoad(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for QcmError {
    fn from(e: GraphError) -> Self {
        QcmError::GraphLoad(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_is_human_readable() {
        assert!(QcmError::InvalidConfig("gamma must be in (0, 1]".into())
            .to_string()
            .contains("gamma"));
        assert!(QcmError::Cancelled.to_string().contains("cancelled"));
        assert!(QcmError::DeadlineExceeded.to_string().contains("deadline"));
        assert!(QcmError::Engine("worker died".into())
            .to_string()
            .contains("worker died"));
    }

    #[test]
    fn graph_errors_convert_and_expose_source() {
        let ge = GraphError::TooManyVertices(5_000_000_000);
        let err: QcmError = ge.into();
        assert!(matches!(err, QcmError::GraphLoad(_)));
        assert!(err.source().is_some());
        assert!(QcmError::Cancelled.source().is_none());
    }

    #[test]
    fn cancel_reasons_map_to_variants() {
        assert!(matches!(
            QcmError::from_cancel(CancelReason::Cancelled),
            QcmError::Cancelled
        ));
        assert!(matches!(
            QcmError::from_cancel(CancelReason::DeadlineExceeded),
            QcmError::DeadlineExceeded
        ));
        assert!(QcmError::from_outcome(RunOutcome::Complete).is_none());
        assert!(matches!(
            QcmError::from_outcome(RunOutcome::Cancelled),
            Some(QcmError::Cancelled)
        ));
        assert!(matches!(
            QcmError::from_outcome(RunOutcome::DeadlineExceeded),
            Some(QcmError::DeadlineExceeded)
        ));
        assert!(matches!(
            QcmError::from_outcome(RunOutcome::Faulted),
            Some(QcmError::Engine(_))
        ));
    }
}
