//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of type `Value`.
///
/// Unlike real proptest there is no shrinking: a strategy is simply a
/// deterministic sampler driven by the test's [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to obtain a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
