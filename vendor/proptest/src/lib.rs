//! Minimal, dependency-free stand-in for
//! [`proptest`](https://crates.io/crates/proptest), written for this
//! workspace's offline build environment.
//!
//! It supports the subset of the proptest API the workspace's property tests
//! use: the [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`,
//! integer-range and tuple strategies, [`collection::vec`], the
//! [`proptest!`] macro with an optional `#![proptest_config(…)]` header, and
//! the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case is reported with its case number; the
//!   deterministic per-test RNG means re-running reproduces it exactly.
//! * **Deterministic seeding.** The RNG seed is derived from the test
//!   function's name, so runs are reproducible across machines. Set
//!   `PROPTEST_SEED=<n>` to explore a different sequence.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Property-test entry point. Matches proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u32..100, (a, b) in (0usize..9, 0usize..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each `fn name(bindings) { body }` item into a `#[test]`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$_meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                let result = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                    Ok(())
                })();
                if let Err(message) = result {
                    panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, message
                    );
                }
            }
        }
        $crate::__proptest_tests!{ ($config) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}", left, right, ::std::format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}
