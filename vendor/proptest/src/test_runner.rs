//! Test-runner configuration and the deterministic RNG driving strategies.

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator (xoshiro256++) seeding strategies.
///
/// The seed is derived from the test name (FNV-1a) so every test explores its
/// own reproducible sequence; `PROPTEST_SEED=<n>` perturbs all of them.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds the RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = extra.trim().parse::<u64>() {
                seed ^= n;
            }
        }
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Returns the next pseudo-random word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
