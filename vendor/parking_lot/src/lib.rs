//! Minimal, dependency-free stand-in for
//! [`parking_lot`](https://crates.io/crates/parking_lot), written for this
//! workspace's offline build environment.
//!
//! It wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` returns the guard directly instead of a `Result`. Poisoning is
//! handled by recovering the inner guard — if a thread panicked while holding
//! the lock the whole engine run is already aborting, so propagating the data
//! is the behaviour parking_lot itself would exhibit.

use std::sync::TryLockError;

/// A mutual-exclusion primitive with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking needed:
    /// the borrow proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader–writer lock with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
