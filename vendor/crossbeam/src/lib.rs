//! Minimal, dependency-free stand-in for
//! [`crossbeam`](https://crates.io/crates/crossbeam), written for this
//! workspace's offline build environment.
//!
//! Only `crossbeam::thread::scope` is provided, backed by
//! `std::thread::scope` (stable since Rust 1.63). The one behavioural
//! difference: crossbeam catches child-thread panics and returns them as
//! `Err`, while `std::thread::scope` resumes the panic when the scope exits.
//! Callers here immediately `.expect()` the result, so a child panic aborts
//! the run either way — the observable behaviour is identical.

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to the closure of [`scope`]; mirrors
    /// `crossbeam_utils::thread::Scope`.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives the
        /// scope handle so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Creates a scope in which spawned threads may borrow from the caller's
    /// stack. All threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}
