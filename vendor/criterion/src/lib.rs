//! Minimal, dependency-free stand-in for
//! [`criterion`](https://crates.io/crates/criterion), written for this
//! workspace's offline build environment.
//!
//! It keeps the same source-level API (`criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, benchmark groups, `BenchmarkId`,
//! `black_box`, `Bencher::iter`) but replaces the statistical machinery with
//! a plain wall-clock loop: each benchmark is warmed up once, then run for a
//! bounded number of iterations, and the mean per-iteration time is printed.
//! That is enough for the CI bitrot smoke (`cargo bench --no-run`) and for
//! coarse local comparisons; numbers printed here are **not** rigorous.
//!
//! Iteration counts can be forced with `QCM_BENCH_ITERS=<n>` (useful to keep
//! full `cargo bench` runs cheap in CI).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measuring time per benchmark; the loop stops early once exceeded.
const TARGET_MEASURE_TIME: Duration = Duration::from_millis(300);

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under the name `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }

    /// Benchmarks `f` with `input`, naming the run after `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.to_string(), self.sample_size, |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Benchmarks `f` with `input` under `group_name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark (`function_name/parameter`).
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function_name.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function_name, self.parameter)
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: usize,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records the total elapsed time.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up run, unmeasured.
        black_box(f());
        let start = Instant::now();
        let mut done = 0;
        for _ in 0..self.iters {
            black_box(f());
            done += 1;
            if start.elapsed() > TARGET_MEASURE_TIME {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters = done.max(1);
    }
}

fn run_one<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let iters = std::env::var("QCM_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(sample_size)
        .max(1);
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
    println!(
        "bench: {id:<50} {:>12.3} ms/iter ({} iters)",
        mean * 1e3,
        bencher.iters
    );
}

/// Declares a benchmark group: `criterion_group!(name, target1, target2, …)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; none apply here.
            $($group();)+
        }
    };
}
