//! Minimal, dependency-free stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, written for this workspace's offline build environment.
//!
//! It implements exactly the 0.8-era API surface the workspace uses:
//! [`rngs::StdRng`] (a xoshiro256++ generator seeded SplitMix64-style),
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`] and [`seq::SliceRandom`] (Fisher–Yates shuffle and
//! uniform choice). All generators are fully deterministic for a given seed,
//! which is what the synthetic dataset generators in `qcm-gen` rely on.
//!
//! The statistical quality of xoshiro256++ is more than adequate for graph
//! generation; this is not a cryptographic generator.

pub mod rngs;
pub mod seq;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// A type that can be sampled uniformly from its full domain (the stand-in
/// for rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can be sampled uniformly (the stand-in for rand's
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-domain inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the type's full domain
    /// (`rng.gen::<f64>()` gives a uniform value in `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples a value uniformly from `range`.
    #[inline]
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose output is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}
